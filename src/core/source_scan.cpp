#include "core/source_scan.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "core/source_lex.h"

namespace saad::core {

namespace {

bool is_ident(char c) { return is_ident_char(c); }

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

// Lexing (comment/string masking, line index, word matching) is shared with
// the stage-flow CFG builder — see core/source_lex.h.

/// Unescapes the string literal opening at `open` (which must be a '"' in
/// `source`); sets `end` past the closing quote.
std::string read_literal(std::string_view source, std::size_t open,
                         std::size_t* end) {
  std::string out;
  std::size_t i = open + 1;
  for (; i < source.size(); ++i) {
    if (source[i] == '\\' && i + 1 < source.size()) {
      out += source[i + 1];
      ++i;
      continue;
    }
    if (source[i] == '"' || source[i] == '\n') break;
    out += source[i];
  }
  *end = i < source.size() ? i + 1 : source.size();
  return out;
}

/// The static template of a call argument list: the first string literal
/// plus any adjacent literals (C++/Java multi-line constant style
/// `"a" "b"`). A `+ "tail"` after a dynamic chunk does not extend the
/// static prefix — only the leading literal run counts.
std::string static_template(std::string_view source, std::string_view code,
                            std::size_t arg_begin, std::size_t arg_end) {
  const auto open = code.find('"', arg_begin);
  if (open == std::string_view::npos || open >= arg_end) return {};
  std::string out;
  std::size_t pos = open;
  while (pos < arg_end && code[pos] == '"') {
    std::size_t end = pos;
    out += read_literal(source, pos, &end);
    pos = skip_ws(code, end);
  }
  return out;
}

struct ClassScope {
  std::string name;
  int body_depth;  // brace depth inside the class body
};

}  // namespace

ScanResult scan_source(std::string_view source, const std::string& file_name) {
  ScanResult result;
  const std::string code = mask_comments_and_strings(source);
  const LineIndex lines(source);

  static constexpr std::string_view kLevels[] = {"debug", "info", "warn",
                                                 "error"};
  static constexpr std::string_view kDequeues[] = {"take", "poll", "dequeue",
                                                   "pop"};

  std::vector<ClassScope> scopes;
  std::string pending_class;  // `class Foo` seen, body brace not yet open
  int depth = 0;
  std::size_t i = 0;
  while (i < code.size()) {
    const char c = code[i];

    if (c == '{') {
      ++depth;
      if (!pending_class.empty()) {
        scopes.push_back({std::move(pending_class), depth});
        pending_class.clear();
      }
      ++i;
      continue;
    }
    if (c == '}') {
      if (!scopes.empty() && scopes.back().body_depth == depth)
        scopes.pop_back();
      if (depth > 0) --depth;
      ++i;
      continue;
    }
    if (c == ';' && !pending_class.empty()) {
      pending_class.clear();  // forward declaration
      ++i;
      continue;
    }

    // `class Foo` / `struct Foo` — next '{' opens its body. A `class T`
    // inside template parameters (`template <class T>`) is not a class
    // declaration: the parameter name is followed by ',' or '>', never by a
    // base-clause or body.
    if ((c == 'c' && word_at(code, i, "class")) ||
        (c == 's' && word_at(code, i, "struct"))) {
      std::size_t p = skip_ws(code, i + (c == 'c' ? 5 : 6));
      std::string name;
      while (p < code.size() && is_ident(code[p])) name += code[p++];
      const std::size_t after = skip_ws(code, p);
      const bool template_param =
          after < code.size() &&
          (code[after] == ',' || code[after] == '>' || code[after] == '=');
      if (!name.empty() && !template_param) pending_class = std::move(name);
      i = p;
      continue;
    }

    // SAAD_STAGE ( "Name" ) — whitespace-tolerant, possibly multi-line.
    if ((c == 's' || c == 'S') && word_at(code, i, "saad_stage")) {
      const std::size_t paren = skip_ws(code, i + 10);
      if (paren < code.size() && code[paren] == '(') {
        const std::size_t close = match_paren(code, paren);
        const std::size_t limit =
            close == std::string_view::npos ? code.size() : close;
        ScannedStage stage;
        stage.file = file_name;
        stage.line = lines.line(i);
        stage.column = lines.column(i);
        stage.name = static_template(source, code, paren + 1, limit);
        stage.explicit_marker = true;
        if (!stage.name.empty()) result.stages.push_back(std::move(stage));
        i = limit;
        continue;
      }
    }

    // Runnable-style stage beginnings: `void run()` inside a class.
    if (c == 'v' && word_at(code, i, "void")) {
      std::size_t p = skip_ws(code, i + 4);
      if (word_at(code, p, "run")) {
        const std::size_t paren = skip_ws(code, p + 3);
        if (paren < code.size() && code[paren] == '(' && !scopes.empty()) {
          ScannedStage stage;
          stage.file = file_name;
          stage.line = lines.line(i);
          stage.column = lines.column(i);
          stage.name = scopes.back().name;
          result.stages.push_back(std::move(stage));
          i = paren;
          continue;
        }
      }
    }

    // Logging statements and dequeue sites share the member-call shape
    // `recv.name(` / `recv->name(`.
    if (c == '.' || (c == '-' && i + 1 < code.size() && code[i + 1] == '>')) {
      const std::size_t name_begin = c == '.' ? i + 1 : i + 2;

      // log.<level>("...") — receiver must look like a logger.
      for (const auto level : kLevels) {
        if (!word_at(code, name_begin, level)) continue;
        const std::size_t paren = skip_ws(code, name_begin + level.size());
        if (paren >= code.size() || code[paren] != '(') break;
        std::size_t recv_begin = i;
        while (recv_begin > 0 && is_ident(code[recv_begin - 1])) --recv_begin;
        std::string receiver(code.substr(recv_begin, i - recv_begin));
        std::transform(receiver.begin(), receiver.end(), receiver.begin(),
                       [](unsigned char ch) { return std::tolower(ch); });
        if (receiver.find("log") == std::string::npos) break;

        const std::size_t close = match_paren(code, paren);
        const std::size_t limit =
            close == std::string_view::npos ? code.size() : close;
        ScannedLogPoint point;
        point.file = file_name;
        point.line = lines.line(recv_begin);
        point.column = lines.column(recv_begin);
        point.end_line = lines.line(limit > 0 ? limit - 1 : 0);
        point.level = std::string(level);
        point.template_text = static_template(source, code, paren + 1, limit);
        point.stage = scopes.empty() ? std::string() : scopes.back().name;
        point.dynamic_only = point.template_text.empty();
        result.log_points.push_back(std::move(point));
        i = limit;
        break;
      }
      if (i != name_begin - (c == '.' ? 1 : 2)) continue;  // consumed above

      // Dequeue sites: candidate consumer-stage beginnings.
      for (const auto needle : kDequeues) {
        if (!word_at(code, name_begin, needle)) continue;
        const std::size_t paren = skip_ws(code, name_begin + needle.size());
        if (paren >= code.size() || code[paren] != '(') break;
        ScannedDequeueSite site;
        site.file = file_name;
        site.line = lines.line(i);
        site.column = lines.column(i);
        site.text = std::string(trim(lines.line_text(source, site.line)));
        result.dequeue_sites.push_back(std::move(site));
        i = paren;
        break;
      }
    }

    ++i;
  }
  return result;
}

void merge(ScanResult& into, ScanResult&& from) {
  auto move_all = [](auto& dst, auto& src) {
    dst.insert(dst.end(), std::make_move_iterator(src.begin()),
               std::make_move_iterator(src.end()));
  };
  move_all(into.stages, from.stages);
  move_all(into.log_points, from.log_points);
  move_all(into.dequeue_sites, from.dequeue_sites);
}

namespace {

std::string sanitize_identifier(std::string_view text, std::size_t index) {
  std::string out;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!out.empty() && out.back() != '_') {
      out += '_';
    }
    if (out.size() >= 28) break;
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])))
    out = "lp_" + std::to_string(index);
  return out;
}

std::string escape_literal(std::string_view text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string generate_registration(const ScanResult& result) {
  std::ostringstream out;
  out << "// Generated by saad_instrument — do not edit.\n"
      << "#include \"core/log_registry.h\"\n\n"
      << "struct Stages {\n";
  for (std::size_t i = 0; i < result.stages.size(); ++i) {
    out << "  saad::core::StageId "
        << sanitize_identifier(result.stages[i].name, i) << ";\n";
  }
  out << "};\n\nstruct LogPoints {\n";
  for (std::size_t i = 0; i < result.log_points.size(); ++i) {
    if (result.log_points[i].dynamic_only) continue;
    out << "  saad::core::LogPointId "
        << sanitize_identifier(result.log_points[i].template_text, i) << ";\n";
  }
  out << "};\n\ninline void register_instrumented("
      << "saad::core::LogRegistry& registry, Stages& stages, "
      << "LogPoints& points) {\n";
  for (std::size_t i = 0; i < result.stages.size(); ++i) {
    const auto& stage = result.stages[i];
    out << "  stages." << sanitize_identifier(stage.name, i)
        << " = registry.register_stage(\"" << escape_literal(stage.name)
        << "\");\n";
  }
  for (std::size_t i = 0; i < result.log_points.size(); ++i) {
    const auto& point = result.log_points[i];
    if (point.dynamic_only) continue;
    // Attribute the point to its enclosing stage when scanned, else stage 0.
    std::string stage_expr = "0";
    for (std::size_t s = 0; s < result.stages.size(); ++s) {
      if (result.stages[s].name == point.stage) {
        stage_expr =
            "stages." + sanitize_identifier(result.stages[s].name, s);
        break;
      }
    }
    std::string level = "kDebug";
    if (point.level == "info") level = "kInfo";
    if (point.level == "warn") level = "kWarn";
    if (point.level == "error") level = "kError";
    out << "  points." << sanitize_identifier(point.template_text, i)
        << " = registry.register_log_point(" << stage_expr
        << ", saad::core::Level::" << level << ", \""
        << escape_literal(point.template_text) << "\", \""
        << escape_literal(point.file) << "\", " << point.line << ");\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace saad::core
