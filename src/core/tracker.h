// Task execution tracker (paper §3.2, §4.1): tracks the execution flow of
// each task from the calls the task makes to the logging library, and emits a
// Synopsis at task termination.
//
// Two usage modes, matching the paper's two staging models:
//
//  * Thread-local mode (real threads). Server threads call
//    `set_context(stage)` at the beginning of a stage; an open context on the
//    same thread is closed first — that is the producer-consumer termination
//    inference ("the thread is about to start a new task"). For
//    dispatcher-worker stages, the pending context is flushed automatically
//    when the thread exits (RAII on the thread_local slot — the C++ analog of
//    the paper's finalize() trick), or explicitly via `end_context()`.
//
//  * Explicit mode (deterministic simulator). Logical tasks are not bound to
//    OS threads, so the simulator creates contexts with `begin_task`, binds
//    one around each code region that logs (TaskBinding RAII), and closes it
//    with `end_task`.
//
// The hot path (`on_log`) is a couple of branches and a small-vector upsert;
// this is what keeps SAAD's overhead at "practically zero" (paper Fig. 7).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "common/clock.h"
#include "core/synopsis.h"

namespace saad::core {

/// Per-task in-memory record: stage, uid, start time, last-log time, and the
/// log-point frequency vector (paper's per-task map, kept as a small sorted
/// vector because tasks touch few distinct points).
class TaskContext {
 public:
  TaskContext(HostId host, StageId stage, TaskUid uid, UsTime start);

  void on_log(LogPointId point, UsTime now);

  /// Builds the terminal synopsis. Duration is start -> last log point
  /// (paper §3.3.1); a task that logged nothing has duration 0.
  Synopsis finish() const;

  StageId stage() const { return stage_; }
  TaskUid uid() const { return uid_; }
  UsTime start() const { return start_; }

 private:
  HostId host_;
  StageId stage_;
  TaskUid uid_;
  UsTime start_;
  UsTime last_log_;
  std::vector<LogPointCount> counts_;  // sorted by point id
};

class TaskExecutionTracker {
 public:
  using SynopsisFn = std::function<void(const Synopsis&)>;

  /// `emit` is invoked (under the tracker's mutex in thread-local mode) for
  /// every completed task. `clock` must outlive the tracker.
  TaskExecutionTracker(HostId host, const Clock* clock, SynopsisFn emit);
  ~TaskExecutionTracker();

  TaskExecutionTracker(const TaskExecutionTracker&) = delete;
  TaskExecutionTracker& operator=(const TaskExecutionTracker&) = delete;

  // ---- Thread-local mode ----------------------------------------------

  /// Begin a new task for the calling thread (the paper's
  /// setContext(stageId) stage delimiter). Closes any open context first.
  void set_context(StageId stage);

  /// Explicitly end the calling thread's open task, if any.
  void end_context();

  // ---- Explicit mode (simulator) ---------------------------------------

  std::unique_ptr<TaskContext> begin_task(StageId stage);
  void end_task(std::unique_ptr<TaskContext> task);

  /// Bind/unbind the context that receives on_log in explicit mode.
  void bind(TaskContext* task) { current_ = task; }
  void unbind() { current_ = nullptr; }
  TaskContext* bound() const { return current_; }

  // ---- Called by Logger -------------------------------------------------

  /// Attributes the log call to the current task (explicit binding first,
  /// then the thread-local slot). Unattributed calls are counted and dropped.
  void on_log(LogPointId point);

  // ---- Introspection ------------------------------------------------------

  HostId host() const { return host_; }
  std::uint64_t tasks_completed() const {
    return tasks_completed_.load(std::memory_order_relaxed);
  }
  std::uint64_t unattributed_logs() const {
    return unattributed_logs_.load(std::memory_order_relaxed);
  }

 private:
  friend struct TlSlot;

  void emit(const TaskContext& ctx);

  HostId host_;
  const Clock* clock_;
  SynopsisFn emit_fn_;
  std::mutex emit_mu_;
  TaskContext* current_ = nullptr;  // explicit-mode binding
  std::atomic<TaskUid> next_uid_{1};
  std::atomic<std::uint64_t> tasks_completed_{0};
  std::atomic<std::uint64_t> unattributed_logs_{0};
};

/// RAII binding for explicit mode: binds `task` to `tracker` for the scope.
class TaskBinding {
 public:
  TaskBinding(TaskExecutionTracker& tracker, TaskContext* task)
      : tracker_(tracker) {
    tracker_.bind(task);
  }
  ~TaskBinding() { tracker_.unbind(); }

  TaskBinding(const TaskBinding&) = delete;
  TaskBinding& operator=(const TaskBinding&) = delete;

 private:
  TaskExecutionTracker& tracker_;
};

}  // namespace saad::core
