#include "core/report_json.h"

#include <cstdio>
#include <sstream>

#include "core/report.h"
#include "obs/exposition.h"

namespace saad::core {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

std::string number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void append_signature(std::ostringstream& out, const Signature& signature,
                      const LogRegistry& registry) {
  out << "\"signature\":[";
  for (std::size_t i = 0; i < signature.points().size(); ++i) {
    if (i) out << ',';
    out << signature.points()[i];
  }
  out << "],\"templates\":[";
  const auto templates = signature_templates(signature, registry);
  for (std::size_t i = 0; i < templates.size(); ++i) {
    if (i) out << ',';
    out << '"' << json_escape(templates[i]) << '"';
  }
  out << ']';
}

}  // namespace

std::string to_json(const Anomaly& anomaly, const LogRegistry& registry) {
  std::ostringstream out;
  const std::string stage_name =
      anomaly.stage < registry.num_stages()
          ? registry.stage(anomaly.stage).name
          : "stage#" + std::to_string(anomaly.stage);
  out << "{\"window\":" << anomaly.window
      << ",\"window_start_us\":" << anomaly.window_start
      << ",\"host\":" << anomaly.host << ",\"stage\":\""
      << json_escape(stage_name) << "\",\"kind\":\""
      << (anomaly.kind == AnomalyKind::kFlow ? "flow" : "performance")
      << "\",\"new_signature\":"
      << (anomaly.due_to_new_signature ? "true" : "false")
      << ",\"p_value\":" << number(anomaly.p_value)
      << ",\"proportion\":" << number(anomaly.proportion)
      << ",\"train_proportion\":" << number(anomaly.train_proportion)
      << ",\"outliers\":" << anomaly.outliers << ",\"n\":" << anomaly.n
      << ',';
  append_signature(out, anomaly.example_signature, registry);
  out << '}';
  return out.str();
}

std::string to_json(const std::vector<Anomaly>& anomalies,
                    const LogRegistry& registry,
                    const JsonReportOptions& options) {
  std::ostringstream out;
  out << "{\"anomalies\":[";
  for (std::size_t i = 0; i < anomalies.size(); ++i) {
    if (i) out << ',';
    out << to_json(anomalies[i], registry);
  }
  out << ']';
  if (options.telemetry != nullptr)
    out << ",\"telemetry\":" << obs::render_json(*options.telemetry);
  out << '}';
  return out.str();
}

std::string to_json(const std::vector<Incident>& incidents,
                    const LogRegistry& registry,
                    const JsonReportOptions& options) {
  std::ostringstream out;
  out << "{\"incidents\":[";
  for (std::size_t i = 0; i < incidents.size(); ++i) {
    const auto& incident = incidents[i];
    if (i) out << ',';
    const std::string stage_name =
        incident.stage < registry.num_stages()
            ? registry.stage(incident.stage).name
            : "stage#" + std::to_string(incident.stage);
    out << "{\"first_window\":" << incident.first_window
        << ",\"last_window\":" << incident.last_window
        << ",\"windows_flagged\":" << incident.windows
        << ",\"host\":" << incident.host << ",\"stage\":\""
        << json_escape(stage_name) << "\",\"kind\":\""
        << (incident.kind == AnomalyKind::kFlow ? "flow" : "performance")
        << "\",\"new_signature\":"
        << (incident.any_new_signature ? "true" : "false")
        << ",\"min_p_value\":" << number(incident.min_p_value) << ',';
    append_signature(out, incident.example_signature, registry);
    out << '}';
  }
  out << ']';
  if (options.telemetry != nullptr)
    out << ",\"telemetry\":" << obs::render_json(*options.telemetry);
  out << '}';
  return out.str();
}

}  // namespace saad::core
