#include "core/telemetry.h"

namespace saad::core {

void register_pipeline_metrics() {
  detail::register_channel_metrics();
  detail::register_analyzer_pool_metrics();
  detail::register_detector_metrics();
  detail::register_trace_io_metrics();
  detail::register_monitor_metrics();
  detail::register_checkpoint_metrics();
}

}  // namespace saad::core
