// Synopsis trace files.
//
// SAAD keeps synopses in memory in production, "however, they could be
// stored for later inspection" (paper §5.3.2) — and storing them is how the
// train-offline/deploy-online workflow works. Two on-disk formats share the
// read_trace_file / TraceReader entry points:
//
//  v1 ("SAADTRC1") — the original format: the magic followed by back-to-back
//    varint-encoded synopses (the same wire encoding the channel uses).
//    Compact but fragile: records carry no framing, so a reader cannot skip
//    damage — it can only recover the complete-record *prefix* of a file and
//    discard the rest. Kept readable for traces written by older builds.
//
//  v2 ("SAADTRC2") — the framed streaming format written by TraceWriter:
//    the magic followed by checksummed blocks
//
//      +--------+-------------+--------------+---------+------------------+
//      | "BLK2" | payload_len | record_count | crc32c  | payload          |
//      | 4 B    | u32 LE      | u32 LE       | u32 LE  | encoded synopses |
//      +--------+-------------+--------------+---------+------------------+
//
//    Every flush() seals a block, so a recorder killed mid-run (power cut,
//    kill -9) loses at most the unflushed tail: TraceReader verifies each
//    block's CRC32C, skips corrupt blocks (counted in TraceStats),
//    resynchronizes on the "BLK2" marker after damaged framing, and stops
//    cleanly at a torn tail. Reader and writer memory are O(one block), not
//    O(trace) — a one-hour production trace streams through a few KB.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/synopsis.h"

namespace saad::core {

/// What a read pass saw: how much decoded cleanly and how much damage was
/// tolerated. A trace with blocks_corrupt == 0 && bytes_discarded == 0 is
/// pristine.
struct TraceStats {
  int version = 0;                    // 1 or 2; 0 = magic not recognized
  std::uint64_t synopses = 0;         // records successfully decoded
  std::uint64_t blocks_total = 0;     // v2: block headers seen (incl. corrupt)
  std::uint64_t blocks_corrupt = 0;   // v2: blocks skipped (bad CRC/framing)
  std::uint64_t bytes_discarded = 0;  // corrupt-block + torn-tail bytes
  bool truncated_tail = false;        // file ended mid-record / mid-block
};

/// Serializes `trace` into a v1 byte buffer (header + concatenated
/// synopses). Kept for compatibility and for in-memory round trips; files
/// are written in format v2 (see TraceWriter / write_trace_file).
std::vector<std::uint8_t> encode_trace(std::span<const Synopsis> trace);

/// Parses a v1 buffer. nullopt only on bad magic. A truncated or malformed
/// record ends the parse: the complete-record prefix is returned and the
/// discarded byte count is reported through `stats`.
std::optional<std::vector<Synopsis>> decode_trace(
    std::span<const std::uint8_t> bytes, TraceStats* stats = nullptr);

/// Streaming, crash-safe trace writer (format v2). Appended synopses are
/// buffered into a block; when the block payload reaches block_bytes — or on
/// an explicit flush() — the block is sealed (length + record count + CRC32C
/// header) and pushed to the OS, making everything up to that boundary
/// recoverable even if the process dies. finalize() publishes the file
/// atomically: the stream goes to `path + ".tmp"` and is renamed onto `path`
/// only once complete, so a reader at `path` never observes a half-written
/// file and a crash mid-record leaves any previous good trace untouched
/// (the torn ".tmp" remains readable block-by-block with TraceReader).
class TraceWriter {
 public:
  struct Options {
    std::size_t block_bytes = 64 * 1024;  // payload size that seals a block
    bool atomic_finalize = true;  // stream to path+".tmp", rename on finalize
  };

  explicit TraceWriter(std::string path) : TraceWriter(std::move(path), Options()) {}
  TraceWriter(std::string path, Options options);
  /// Flushes buffered synopses but never renames: destruction without
  /// finalize() models a crash and leaves the ".tmp" recoverable.
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// False after any I/O error; subsequent calls are no-ops.
  bool ok() const { return ok_; }

  /// Buffers one synopsis; seals and writes a block when full.
  bool append(const Synopsis& s);

  /// Seals the current block (if non-empty) and flushes to the OS: a crash
  /// after flush() loses nothing appended before it.
  bool flush();

  /// flush() + close + (atomic mode) rename into place. Idempotent.
  bool finalize();

  std::uint64_t synopses_written() const { return synopses_; }
  std::uint64_t blocks_written() const { return blocks_; }
  /// Framed bytes written so far (file magic + sealed block frames).
  std::uint64_t bytes_written() const { return bytes_; }
  const std::string& path() const { return path_; }

 private:
  bool write_block();

  std::string path_;
  std::string write_path_;  // path_ or path_ + ".tmp"
  Options options_;
  std::ofstream out_;
  std::vector<std::uint8_t> payload_;  // current unsealed block
  std::uint32_t payload_records_ = 0;
  std::uint64_t synopses_ = 0;
  std::uint64_t blocks_ = 0;
  std::uint64_t bytes_ = 0;
  bool ok_ = false;
  bool finalized_ = false;
};

/// Streaming trace reader for both formats. Iterates synopses one at a
/// time; damage short of an unrecognizable magic is skipped and tallied in
/// stats() rather than failing the whole file. For v2, memory is bounded by
/// one block. For v1 (no framing) the reader streams in chunks but must
/// buffer up to the rest of the file when a record is malformed mid-stream;
/// the complete-record prefix is still recovered.
class TraceReader {
 public:
  explicit TraceReader(const std::string& path);

  /// False when the file could not be opened or carries no trace magic.
  bool ok() const { return ok_; }
  int version() const { return stats_.version; }

  /// Decodes the next synopsis; false at the end of recoverable data.
  /// Damage counters in stats() are final once next() has returned false.
  bool next(Synopsis& out);

  const TraceStats& stats() const { return stats_; }

  /// Peak bytes buffered internally (framed block for v2, chunk buffer for
  /// v1). Lets tests pin the O(one block) memory guarantee.
  std::size_t max_buffered_bytes() const { return max_buffered_; }

 private:
  bool read_exact(std::uint8_t* dst, std::size_t n, std::size_t* got);
  bool refill_block_v2();
  bool next_v1(Synopsis& out);

  std::ifstream in_;
  bool ok_ = false;
  TraceStats stats_;
  std::size_t max_buffered_ = 0;

  // v2: records of the current CRC-verified block, drained front to back.
  std::vector<Synopsis> block_records_;
  std::size_t block_pos_ = 0;
  std::vector<std::uint8_t> carry_;  // bytes consumed while resynchronizing

  // v1: chunked byte buffer.
  std::vector<std::uint8_t> v1_buf_;
  std::size_t v1_pos_ = 0;
  bool v1_eof_ = false;
};

/// Writes `trace` as a v2 file via TraceWriter: temp file + atomic rename,
/// so failure at any point leaves a previous trace at `path` intact.
bool write_trace_file(const std::string& path, std::span<const Synopsis> trace);

/// Loads an entire trace file (v1 or v2) through TraceReader. nullopt when
/// the file cannot be opened or the magic is unrecognized; lesser damage
/// (corrupt blocks, torn tail) yields the recoverable records, tallied in
/// `stats`.
std::optional<std::vector<Synopsis>> read_trace_file(
    const std::string& path, TraceStats* stats = nullptr);

}  // namespace saad::core
