// Synopsis trace files.
//
// SAAD keeps synopses in memory in production, "however, they could be
// stored for later inspection" (paper §5.3.2) — and storing them is how the
// train-offline/deploy-online workflow works. A trace file is the magic
// header followed by back-to-back varint-encoded synopses (the same wire
// encoding the channel uses); a one-hour production trace is a few MB.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/synopsis.h"

namespace saad::core {

/// Serializes `trace` into a byte buffer (header + concatenated synopses).
std::vector<std::uint8_t> encode_trace(std::span<const Synopsis> trace);

/// Parses a buffer produced by encode_trace. nullopt on bad magic or a
/// malformed record.
std::optional<std::vector<Synopsis>> decode_trace(
    std::span<const std::uint8_t> bytes);

/// File convenience wrappers; false/nullopt on I/O errors.
bool write_trace_file(const std::string& path, std::span<const Synopsis> trace);
std::optional<std::vector<Synopsis>> read_trace_file(const std::string& path);

}  // namespace saad::core
