#include "core/checkpoint.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/crc32c.h"
#include "core/telemetry.h"
#include "core/varint.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace saad::core {

namespace {

namespace fs = std::filesystem;

constexpr char kFilePrefix[] = "ckpt-";
constexpr char kFileSuffix[] = ".saadckp";

struct CheckpointMetrics {
  obs::Counter& writes;
  obs::Counter& write_errors;
  obs::Counter& written_bytes;
  obs::Counter& restores;
  obs::Counter& corrupt;
  obs::Counter& pruned;
  obs::Gauge& last_sequence;
  obs::Histogram& write_us;

  CheckpointMetrics()
      : writes(obs::MetricsRegistry::global().counter(
            "saad_checkpoint_writes_total",
            "Checkpoint files written (temp + rename completed).")),
        write_errors(obs::MetricsRegistry::global().counter(
            "saad_checkpoint_write_errors_total",
            "Checkpoint writes that failed before the rename (previous "
            "checkpoint left untouched).")),
        written_bytes(obs::MetricsRegistry::global().counter(
            "saad_checkpoint_written_bytes_total",
            "Bytes of encoded checkpoints written.")),
        restores(obs::MetricsRegistry::global().counter(
            "saad_checkpoint_restores_total",
            "Checkpoints successfully decoded and restored from.")),
        corrupt(obs::MetricsRegistry::global().counter(
            "saad_checkpoint_corrupt_total",
            "Checkpoint candidates rejected as torn or corrupt during "
            "newest-valid fallback.")),
        pruned(obs::MetricsRegistry::global().counter(
            "saad_checkpoint_pruned_total",
            "Old checkpoint files removed by retention.")),
        last_sequence(obs::MetricsRegistry::global().gauge(
            "saad_checkpoint_last_sequence",
            "Sequence number of the most recently written checkpoint.")),
        write_us(obs::MetricsRegistry::global().histogram(
            "saad_checkpoint_write_us",
            "Latency of one checkpoint write (encode + write + rename), "
            "microseconds.",
            obs::latency_bounds_us())) {}

  static CheckpointMetrics& get() {
    static CheckpointMetrics* metrics = new CheckpointMetrics();
    return *metrics;
  }
};

void put_section(CheckpointSection id, std::span<const std::uint8_t> payload,
                 std::vector<std::uint8_t>& out) {
  const auto id_byte = static_cast<std::uint8_t>(id);
  out.push_back(id_byte);
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  std::uint32_t crc = crc32c({&id_byte, 1});
  crc = crc32c(payload, crc);
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  out.insert(out.end(), payload.begin(), payload.end());
}

std::uint32_t get_u32le(std::span<const std::uint8_t> in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(in[static_cast<std::size_t>(i)])
         << (8 * i);
  return v;
}

/// Slices the next section off `in`. False on truncation, oversized length,
/// or CRC mismatch.
bool get_section(std::span<const std::uint8_t>& in, std::uint8_t& id,
                 std::span<const std::uint8_t>& payload) {
  if (in.size() < kCheckpointSectionHeader) return false;
  id = in[0];
  const std::uint32_t len = get_u32le(in.subspan(1, 4));
  const std::uint32_t want = get_u32le(in.subspan(5, 4));
  if (len > kMaxCheckpointSection) return false;
  if (in.size() < kCheckpointSectionHeader + len) return false;
  payload = in.subspan(kCheckpointSectionHeader, len);
  std::uint32_t crc = crc32c({&id, 1});
  crc = crc32c(payload, crc);
  if (crc != want) return false;
  in = in.subspan(kCheckpointSectionHeader + len);
  return true;
}

void put_signature(const Signature& sig, std::vector<std::uint8_t>& out) {
  put_varint(sig.points().size(), out);
  LogPointId prev = 0;
  for (const LogPointId p : sig.points()) {
    put_varint(static_cast<std::uint64_t>(p - prev), out);
    prev = p;
  }
}

bool get_signature(std::span<const std::uint8_t>& in, Signature& sig) {
  std::uint64_t count = 0;
  if (!get_varint(in, count) || count > 0x10000) return false;
  std::vector<LogPointId> points;
  points.reserve(count);
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t delta = 0;
    if (!get_varint(in, delta)) return false;
    prev += delta;
    if (prev > 0xFFFF) return false;
    points.push_back(static_cast<LogPointId>(prev));
  }
  sig = Signature(std::move(points));
  return true;
}

bool valid_probability(double d) {
  return std::isfinite(d) && d >= 0.0 && d <= 1.0;
}

}  // namespace

void detail::register_checkpoint_metrics() { CheckpointMetrics::get(); }

void encode_anomalies(std::span<const Anomaly> anomalies,
                      std::vector<std::uint8_t>& out) {
  put_varint(anomalies.size(), out);
  for (const Anomaly& a : anomalies) {
    put_varint(a.window, out);
    put_varint(zigzag(a.window_start), out);
    put_varint(a.host, out);
    put_varint(a.stage, out);
    put_varint(static_cast<std::uint64_t>(a.kind), out);
    put_varint(a.due_to_new_signature ? 1 : 0, out);
    put_double(a.p_value, out);
    put_double(a.proportion, out);
    put_double(a.train_proportion, out);
    put_varint(a.n, out);
    put_varint(a.outliers, out);
    put_signature(a.example_signature, out);
  }
}

bool decode_anomalies(std::span<const std::uint8_t> in,
                      std::vector<Anomaly>& out) {
  std::uint64_t count = 0;
  if (!get_varint(in, count) || count > 0x1000000) return false;
  std::vector<Anomaly> parsed;
  parsed.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Anomaly a;
    std::uint64_t v = 0;
    if (!get_varint(in, v)) return false;
    a.window = static_cast<std::size_t>(v);
    if (!get_varint(in, v)) return false;
    a.window_start = unzigzag(v);
    if (!get_varint(in, v) || v > 0xFFFFFFFF) return false;
    a.host = static_cast<HostId>(v);
    if (!get_varint(in, v) || v > 0xFFFF) return false;
    a.stage = static_cast<StageId>(v);
    if (!get_varint(in, v) || v > 1) return false;
    a.kind = static_cast<AnomalyKind>(v);
    if (!get_varint(in, v) || v > 1) return false;
    a.due_to_new_signature = v != 0;
    if (!get_double(in, a.p_value) || !valid_probability(a.p_value))
      return false;
    if (!get_double(in, a.proportion) || !valid_probability(a.proportion))
      return false;
    if (!get_double(in, a.train_proportion) ||
        !valid_probability(a.train_proportion)) {
      return false;
    }
    if (!get_varint(in, a.n)) return false;
    if (!get_varint(in, a.outliers)) return false;
    if (!get_signature(in, a.example_signature)) return false;
    parsed.push_back(std::move(a));
  }
  if (!in.empty()) return false;
  out = std::move(parsed);
  return true;
}

void encode_checkpoint(const Checkpoint& c, std::vector<std::uint8_t>& out) {
  out.insert(out.end(), kCheckpointMagic,
             kCheckpointMagic + sizeof(kCheckpointMagic));
  std::vector<std::uint8_t> meta;
  put_varint(kCheckpointVersion, meta);
  put_varint(c.sequence, meta);
  put_varint(c.model_epoch, meta);
  put_varint(zigzag(c.window), meta);
  put_varint(c.threads, meta);
  put_varint(c.ingested, meta);
  put_varint(c.published, meta);
  put_varint(c.acked, meta);
  put_section(CheckpointSection::kMeta, meta, out);
  put_section(CheckpointSection::kModel, c.model, out);
  put_section(CheckpointSection::kRegistry, c.registry, out);
  put_section(CheckpointSection::kAnalyzer, c.analyzer, out);
  std::vector<std::uint8_t> anomalies;
  encode_anomalies(c.anomalies, anomalies);
  put_section(CheckpointSection::kAnomalies, anomalies, out);
  put_section(CheckpointSection::kEnd, {}, out);
}

std::optional<Checkpoint> decode_checkpoint(std::span<const std::uint8_t> in) {
  if (in.size() < sizeof(kCheckpointMagic) ||
      std::memcmp(in.data(), kCheckpointMagic, sizeof(kCheckpointMagic)) != 0) {
    return std::nullopt;
  }
  in = in.subspan(sizeof(kCheckpointMagic));

  // v1 is strict about shape: exactly these sections, in this order. A
  // future version bumps kCheckpointVersion (and the magic if the framing
  // itself changes) rather than tolerating unknown sections.
  constexpr CheckpointSection kOrder[] = {
      CheckpointSection::kMeta,      CheckpointSection::kModel,
      CheckpointSection::kRegistry,  CheckpointSection::kAnalyzer,
      CheckpointSection::kAnomalies, CheckpointSection::kEnd,
  };
  Checkpoint c;
  for (const CheckpointSection expected : kOrder) {
    std::uint8_t id = 0;
    std::span<const std::uint8_t> payload;
    if (!get_section(in, id, payload)) return std::nullopt;
    if (id != static_cast<std::uint8_t>(expected)) return std::nullopt;
    switch (expected) {
      case CheckpointSection::kMeta: {
        std::span<const std::uint8_t> p = payload;
        std::uint64_t version = 0, window = 0;
        if (!get_varint(p, version) || version != kCheckpointVersion)
          return std::nullopt;
        if (!get_varint(p, c.sequence)) return std::nullopt;
        if (!get_varint(p, c.model_epoch)) return std::nullopt;
        if (!get_varint(p, window)) return std::nullopt;
        c.window = unzigzag(window);
        if (c.window <= 0) return std::nullopt;
        if (!get_varint(p, c.threads)) return std::nullopt;
        if (!get_varint(p, c.ingested)) return std::nullopt;
        if (!get_varint(p, c.published)) return std::nullopt;
        if (!get_varint(p, c.acked)) return std::nullopt;
        if (!p.empty()) return std::nullopt;
        break;
      }
      case CheckpointSection::kModel:
        c.model.assign(payload.begin(), payload.end());
        break;
      case CheckpointSection::kRegistry:
        c.registry.assign(payload.begin(), payload.end());
        break;
      case CheckpointSection::kAnalyzer:
        c.analyzer.assign(payload.begin(), payload.end());
        break;
      case CheckpointSection::kAnomalies:
        if (!decode_anomalies(payload, c.anomalies)) return std::nullopt;
        break;
      case CheckpointSection::kEnd:
        if (!payload.empty()) return std::nullopt;
        break;
    }
  }
  if (!in.empty()) return std::nullopt;  // trailing garbage
  return c;
}

bool write_checkpoint_file(const std::string& path, const Checkpoint& c) {
  auto& metrics = CheckpointMetrics::get();
  std::chrono::steady_clock::time_point begin;
  if constexpr (obs::kMetricsEnabled) begin = std::chrono::steady_clock::now();

  std::vector<std::uint8_t> bytes;
  encode_checkpoint(c, bytes);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    file.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
    file.flush();
    if (!file) {
      metrics.write_errors.inc();
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    metrics.write_errors.inc();
    fs::remove(tmp, ec);
    return false;
  }
  if constexpr (obs::kMetricsEnabled) {
    metrics.writes.inc();
    metrics.written_bytes.inc(bytes.size());
    metrics.last_sequence.set(static_cast<std::int64_t>(c.sequence));
    metrics.write_us.observe(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - begin)
            .count());
  }
  obs::FlightRecorder::global().record(
      obs::EventKind::kCustom,
      "checkpoint %llu written: %zu bytes, %llu synopses",
      static_cast<unsigned long long>(c.sequence), bytes.size(),
      static_cast<unsigned long long>(c.ingested));
  return true;
}

std::optional<Checkpoint> read_checkpoint_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return std::nullopt;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(file)),
                                  std::istreambuf_iterator<char>());
  return decode_checkpoint(bytes);
}

CheckpointDir::CheckpointDir(std::string dir) : dir_(std::move(dir)) {}

bool CheckpointDir::ensure() {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  return !ec && fs::is_directory(dir_, ec);
}

std::string CheckpointDir::path_for(std::uint64_t sequence) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%012llu%s", kFilePrefix,
                static_cast<unsigned long long>(sequence), kFileSuffix);
  return (fs::path(dir_) / name).string();
}

namespace {

/// Sequence numbers of every ckpt-*.saadckp in `dir`, ascending.
std::vector<std::uint64_t> list_sequences(const std::string& dir) {
  std::vector<std::uint64_t> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    const std::size_t prefix = sizeof(kFilePrefix) - 1;
    const std::size_t suffix = sizeof(kFileSuffix) - 1;
    if (name.size() <= prefix + suffix) continue;
    if (name.rfind(kFilePrefix, 0) != 0) continue;
    if (name.compare(name.size() - suffix, suffix, kFileSuffix) != 0) continue;
    const std::string digits = name.substr(prefix, name.size() - prefix - suffix);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    try {
      out.push_back(std::stoull(digits));
    } catch (const std::exception&) {
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::uint64_t CheckpointDir::max_sequence() const {
  const auto seqs = list_sequences(dir_);
  return seqs.empty() ? 0 : seqs.back();
}

std::optional<Checkpoint> CheckpointDir::load_latest(
    std::size_t* corrupt_skipped) const {
  if (corrupt_skipped != nullptr) *corrupt_skipped = 0;
  auto seqs = list_sequences(dir_);
  auto& metrics = CheckpointMetrics::get();
  for (auto it = seqs.rbegin(); it != seqs.rend(); ++it) {
    const std::string path = path_for(*it);
    if (auto c = read_checkpoint_file(path)) {
      metrics.restores.inc();
      return c;
    }
    metrics.corrupt.inc();
    if (corrupt_skipped != nullptr) ++*corrupt_skipped;
    std::fprintf(stderr,
                 "checkpoint: %s is torn or corrupt, falling back to the "
                 "previous checkpoint\n",
                 path.c_str());
  }
  return std::nullopt;
}

bool CheckpointDir::write(const Checkpoint& c, std::size_t keep) {
  if (!write_checkpoint_file(path_for(c.sequence), c)) return false;
  auto seqs = list_sequences(dir_);
  if (seqs.size() > keep) {
    auto& metrics = CheckpointMetrics::get();
    for (std::size_t i = 0; i + keep < seqs.size(); ++i) {
      std::error_code ec;
      if (fs::remove(path_for(seqs[i]), ec)) metrics.pruned.inc();
    }
  }
  return true;
}

}  // namespace saad::core
