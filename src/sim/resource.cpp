#include "sim/resource.h"

namespace saad::sim {

void Resource::release() {
  if (!waiters_.empty()) {
    auto h = waiters_.front();
    waiters_.pop_front();
    // Slot passes directly to the waiter; available_ stays unchanged.
    engine_->resume_in(0, h);
    return;
  }
  available_++;
}

Task<void> Resource::use(UsTime service) {
  co_await acquire();
  co_await engine_->delay(service);
  release();
}

Task<IoResult> Disk::io(faults::Activity activity, UsTime service) {
  IoResult result;
  const UsTime enqueue_time = engine_->now();
  co_await res_.acquire();
  result.queued = engine_->now() - enqueue_time;

  const double slowdown = plane_->disk_slowdown(host_, engine_->now());
  const double jitter =
      service_sigma_ > 0.0 ? rng_.lognormal_median(1.0, service_sigma_) : 1.0;
  const auto outcome = plane_->apply(host_, activity, engine_->now(), rng_);
  const UsTime device_time =
      static_cast<UsTime>(static_cast<double>(service) * slowdown * jitter);
  co_await engine_->delay(device_time);
  res_.release();
  // An injected *delay* stalls this request's completion (Systemtap pauses
  // the probe) but does not head-block the device for other requests.
  if (outcome.extra_delay > 0) co_await engine_->delay(outcome.extra_delay);
  result.service = device_time + outcome.extra_delay;
  result.ok = !outcome.error;
  co_return result;
}

Task<IoResult> Network::transfer(std::uint16_t from_host, UsTime extra_service) {
  IoResult result;
  const auto outcome =
      plane_->apply(from_host, faults::Activity::kNetwork, engine_->now(), rng_);
  result.service = base_latency_ + extra_service + outcome.extra_delay;
  co_await engine_->delay(result.service);
  result.ok = !outcome.error;
  co_return result;
}

void Gate::open() {
  open_ = true;
  std::vector<std::coroutine_handle<>> woken;
  woken.swap(waiters_);
  for (auto h : woken) engine_->resume_in(0, h);
}

}  // namespace saad::sim
