// Lazy awaitable coroutine with a result — the composition primitive for
// simulated operations (`IoResult r = co_await disk.write(...)`).
//
// Standard design: initial_suspend is suspend_always (the body runs only once
// awaited), final_suspend symmetrically transfers to the awaiting coroutine,
// and the Task object owns the frame (destroyed in ~Task after the await
// completes, because the temporary operand of co_await lives until the end of
// the full expression).
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace saad::sim {

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type {
    std::optional<T> value;
    std::coroutine_handle<> continuation;

    Task get_return_object() noexcept {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_value(T v) { value = std::move(v); }
    void unhandled_exception() { std::terminate(); }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
    handle_.promise().continuation = cont;
    return handle_;  // start the body now
  }
  T await_resume() { return std::move(*handle_.promise().value); }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;

    Task get_return_object() noexcept {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() { std::terminate(); }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
    handle_.promise().continuation = cont;
    return handle_;
  }
  void await_resume() noexcept {}

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace saad::sim
