// One-shot completion with timeout: the request/response primitive used by
// simulated RPCs (a coordinator awaits a replica's ack, or gives up and
// writes a hint). Single waiter, fulfilled at most once.
#pragma once

#include <coroutine>
#include <memory>

#include "sim/engine.h"

namespace saad::sim {

class OneShot : public std::enable_shared_from_this<OneShot> {
 public:
  static std::shared_ptr<OneShot> create(Engine* engine) {
    return std::shared_ptr<OneShot>(new OneShot(engine));
  }

  /// Mark complete; wakes the waiter (with result true) if one is suspended
  /// and its timeout has not fired yet. Idempotent.
  void fulfill() {
    if (fulfilled_) return;
    fulfilled_ = true;
    if (waiter_ && !decided_) {
      decided_ = true;
      result_ = true;
      auto h = waiter_;
      waiter_ = nullptr;
      engine_->resume_in(0, h);
    }
  }

  bool fulfilled() const { return fulfilled_; }

  /// co_await one_shot->wait(timeout) -> true if fulfilled in time, false on
  /// timeout. May be awaited at most once.
  auto wait(UsTime timeout) {
    struct Awaiter {
      std::shared_ptr<OneShot> self;
      UsTime timeout;

      bool await_ready() const { return self->fulfilled_; }
      void await_suspend(std::coroutine_handle<> h) {
        self->waiter_ = h;
        // The timeout event holds a shared_ptr so the state outlives callers.
        auto keep = self;
        self->engine_->schedule_in(timeout, [keep] {
          if (keep->decided_ || keep->waiter_ == nullptr) return;
          keep->decided_ = true;
          keep->result_ = false;
          auto wh = keep->waiter_;
          keep->waiter_ = nullptr;
          wh.resume();
        });
      }
      bool await_resume() const {
        return self->fulfilled_ && (self->decided_ ? self->result_ : true);
      }
    };
    return Awaiter{shared_from_this(), timeout};
  }

 private:
  explicit OneShot(Engine* engine) : engine_(engine) {}

  Engine* engine_;
  bool fulfilled_ = false;
  bool decided_ = false;  // waiter outcome fixed (fulfilled or timed out)
  bool result_ = false;
  std::coroutine_handle<> waiter_ = nullptr;
};

}  // namespace saad::sim
