// Simulated contended resources.
//
//  * Resource — a k-server FIFO semaphore (disk heads, handler slots, locks).
//  * Disk     — capacity-1 resource whose operations take a service time,
//               inflated by active disk hogs and subject to injected error /
//               delay faults (faults::FaultPlane).
//  * Network  — latency channel with fault hooks, no queueing (bandwidth is
//               not the bottleneck in any of the reproduced experiments).
//  * Gate     — broadcast condition ("MemTable unfrozen", "recovery done").
#pragma once

#include <coroutine>
#include <deque>
#include <string>
#include <vector>

#include "common/rng.h"
#include "faults/fault_plane.h"
#include "sim/engine.h"
#include "sim/task.h"

namespace saad::sim {

class Resource {
 public:
  Resource(Engine* engine, int capacity)
      : engine_(engine), available_(capacity) {}

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Awaitable FIFO acquire of one slot.
  auto acquire() {
    struct Awaiter {
      Resource& res;
      bool await_ready() {
        if (res.waiters_.empty() && res.available_ > 0) {
          res.available_--;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        res.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Releases one slot; wakes the first waiter (it inherits the slot).
  void release();

  /// acquire -> delay(service) -> release.
  Task<void> use(UsTime service);

  int available() const { return available_; }
  std::size_t queue_length() const { return waiters_.size(); }

 private:
  Engine* engine_;
  int available_;
  std::deque<std::coroutine_handle<>> waiters_;
};

struct IoResult {
  bool ok = true;
  UsTime queued = 0;   // time spent waiting for the device
  UsTime service = 0;  // actual service time incl. hog slowdown and delays
};

/// One disk per host. Service times given by callers are the no-contention
/// baseline; hogs multiply them, injected delay faults add on top, and
/// injected error faults fail the operation after it completes its service
/// (an errored write still occupied the device).
class Disk {
 public:
  /// `service_sigma` > 0 adds lognormal service-time jitter (median 1.0):
  /// real devices have heavy-ish right tails, and the SAAD duration
  /// thresholds are only meaningful against that natural variability.
  Disk(Engine* engine, const faults::FaultPlane* plane, std::uint16_t host,
       Rng rng, double service_sigma = 0.0)
      : engine_(engine), plane_(plane), host_(host), rng_(rng),
        service_sigma_(service_sigma), res_(engine, 1) {}

  Task<IoResult> io(faults::Activity activity, UsTime service);

  std::size_t queue_length() const { return res_.queue_length(); }

 private:
  Engine* engine_;
  const faults::FaultPlane* plane_;
  std::uint16_t host_;
  Rng rng_;
  double service_sigma_;
  Resource res_;
};

/// Point-to-point message latency with fault hooks.
class Network {
 public:
  Network(Engine* engine, const faults::FaultPlane* plane, Rng rng,
          UsTime base_latency)
      : engine_(engine), plane_(plane), rng_(rng), base_latency_(base_latency) {}

  /// One-way transfer from `from_host`; ok=false when an error fault hit.
  Task<IoResult> transfer(std::uint16_t from_host, UsTime extra_service = 0);

 private:
  Engine* engine_;
  const faults::FaultPlane* plane_;
  Rng rng_;
  UsTime base_latency_;
};

/// Broadcast condition variable. wait() suspends while closed; open() wakes
/// every waiter and leaves the gate open.
class Gate {
 public:
  explicit Gate(Engine* engine, bool open = true)
      : engine_(engine), open_(open) {}

  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;

  auto wait() {
    struct Awaiter {
      Gate& gate;
      bool await_ready() const { return gate.open_; }
      void await_suspend(std::coroutine_handle<> h) {
        gate.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void open();
  void close() { open_ = false; }
  bool is_open() const { return open_; }
  std::size_t waiting() const { return waiters_.size(); }

 private:
  Engine* engine_;
  bool open_;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace saad::sim
