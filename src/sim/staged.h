// Glue between simulated staged servers and the SAAD core.
//
// In the simulator, logical tasks are not OS threads, so attribution of log
// calls cannot ride on thread-local state. StageTask owns the task's
// TaskContext and binds it around every log call (explicit-mode tracker API).
// Simulated stage code reads exactly like the instrumented Java of the paper:
//
//   Process DataXceiver::run(...) {
//     StageTask task(host.begin(kDataXceiver));
//     task.log(L1);                       // tracepoint only (text off)
//     task.log(L2, [&]{ return "Receiving one packet for blk_" + id; });
//     ...
//   }  // synopsis emitted when `task` goes out of scope
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>

#include "core/logger.h"
#include "core/tracker.h"

namespace saad::sim {

class StageTask {
 public:
  /// A null tracker produces an untracked task: log calls still reach the
  /// logger (text/volume accounting) but no synopsis is emitted — the
  /// "original system without SAAD" configuration of the overhead study.
  StageTask(core::TaskExecutionTracker* tracker, core::Logger* logger,
            core::StageId stage)
      : tracker_(tracker), logger_(logger),
        ctx_(tracker ? tracker->begin_task(stage) : nullptr) {}

  StageTask(StageTask&& other) noexcept
      : tracker_(other.tracker_), logger_(other.logger_),
        ctx_(std::move(other.ctx_)) {}

  StageTask(const StageTask&) = delete;
  StageTask& operator=(const StageTask&) = delete;
  StageTask& operator=(StageTask&&) = delete;

  ~StageTask() { finish(); }

  /// Hit a log point with pre-rendered (or no) text.
  void log(core::LogPointId point, std::string_view message = {}) {
    if (ctx_ == nullptr) {
      logger_->log(point, message);
      return;
    }
    core::TaskBinding bind(*tracker_, ctx_.get());
    logger_->log(point, message);
  }

  /// Hit a log point, rendering text only if the logger will write it — the
  /// isDebugEnabled() idiom; rendering cost is zero at INFO threshold for
  /// DEBUG statements.
  template <typename RenderFn>
    requires std::is_invocable_r_v<std::string, RenderFn>
  void log(core::LogPointId point, RenderFn&& render) {
    const auto level = logger_->registry().log_point(point).level;
    const bool writes = logger_->writes(level);
    const std::string text = writes ? render() : std::string();
    if (ctx_ == nullptr) {
      logger_->log(point, text);
      return;
    }
    core::TaskBinding bind(*tracker_, ctx_.get());
    logger_->log(point, text);
  }

  /// Terminate the task and emit its synopsis. Idempotent; also called by
  /// the destructor (premature scope exit == premature task termination,
  /// which is precisely the signal SAAD catches as a rare signature).
  void finish() {
    if (ctx_ != nullptr) tracker_->end_task(std::move(ctx_));
  }

  bool finished() const { return ctx_ == nullptr; }
  core::TaskUid uid() const { return ctx_ ? ctx_->uid() : 0; }

 private:
  core::TaskExecutionTracker* tracker_;
  core::Logger* logger_;
  std::unique_ptr<core::TaskContext> ctx_;
};

}  // namespace saad::sim
