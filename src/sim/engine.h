// Deterministic discrete-event engine.
//
// All statistical experiments in this reproduction run on virtual time: the
// engine owns a ManualClock, a time-ordered event heap, and fire-and-forget
// coroutine "processes" that model server threads. Determinism comes from the
// (time, sequence) total order on events plus seeded RNG everywhere — a bench
// run twice produces identical output.
//
// The SAAD core is clock-agnostic (common/clock.h); trackers attached to the
// engine's clock observe virtual timestamps, so durations and window indices
// are exact.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.h"

namespace saad::sim {

/// Fire-and-forget coroutine for simulated threads / daemons. Starts
/// executing immediately when called; the frame self-destroys at completion.
/// A process suspended on an awaitable when the engine is destroyed is
/// abandoned (its frame is reclaimed by the owning awaitable's queue being
/// dropped — see note in queue.h).
class Process {
 public:
  struct promise_type {
    Process get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { std::terminate(); }
  };
};

class Engine {
 public:
  Engine() = default;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  UsTime now() const { return clock_.now(); }
  const Clock& clock() const { return clock_; }

  /// Schedule `fn` at absolute virtual time `t` (>= now).
  void schedule_at(UsTime t, std::function<void()> fn);
  void schedule_in(UsTime dt, std::function<void()> fn);

  /// Resume a coroutine at / in the given time.
  void resume_at(UsTime t, std::coroutine_handle<> h);
  void resume_in(UsTime dt, std::coroutine_handle<> h);

  /// Run events with time <= until; the clock lands exactly on `until`.
  void run_until(UsTime until);

  /// Run until the event heap is drained.
  void run_all();

  bool idle() const { return events_.empty(); }
  std::uint64_t events_processed() const { return processed_; }

  /// Awaitable pause: `co_await engine.delay(us)`.
  auto delay(UsTime dt) {
    struct Awaiter {
      Engine& engine;
      UsTime dt;
      bool await_ready() const noexcept { return dt <= 0; }
      void await_suspend(std::coroutine_handle<> h) {
        engine.resume_in(dt, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, dt};
  }

 private:
  struct Event {
    UsTime time;
    std::uint64_t seq;  // ties broken by schedule order: determinism
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  ManualClock clock_;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace saad::sim
