// staged.h is header-only; this TU anchors the library target.
#include "sim/staged.h"
