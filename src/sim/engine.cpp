#include "sim/engine.h"

#include <cassert>
#include <utility>

namespace saad::sim {

void Engine::schedule_at(UsTime t, std::function<void()> fn) {
  assert(t >= now());
  events_.push(Event{t, next_seq_++, std::move(fn)});
}

void Engine::schedule_in(UsTime dt, std::function<void()> fn) {
  schedule_at(now() + std::max<UsTime>(dt, 0), std::move(fn));
}

void Engine::resume_at(UsTime t, std::coroutine_handle<> h) {
  schedule_at(t, [h] { h.resume(); });
}

void Engine::resume_in(UsTime dt, std::coroutine_handle<> h) {
  schedule_in(dt, [h] { h.resume(); });
}

void Engine::run_until(UsTime until) {
  while (!events_.empty() && events_.top().time <= until) {
    Event ev = events_.top();
    events_.pop();
    clock_.set(ev.time);
    processed_++;
    ev.fn();
  }
  clock_.set(until);
}

void Engine::run_all() {
  while (!events_.empty()) {
    Event ev = events_.top();
    events_.pop();
    clock_.set(ev.time);
    processed_++;
    ev.fn();
  }
}

}  // namespace saad::sim
