// Awaitable FIFO queue: the task queue of the producer-consumer staging model
// (paper §3.2.1). Consumer stages loop `for (;;) { T req = co_await q.pop(); ... }`.
//
// Hand-off is by value into the waiter's slot, so a woken consumer can never
// lose its item to a competing pop between wake-up scheduling and resumption.
//
// Teardown note: consumers suspended in pop() when the queue is destroyed are
// abandoned (their frames are not resumed or destroyed). Simulations should
// run to their stop time and then drop the whole world at once; this matches
// the fire-and-forget Process model.
#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "sim/engine.h"

namespace saad::sim {

template <typename T>
class SimQueue {
 public:
  explicit SimQueue(Engine* engine) : engine_(engine) {}

  SimQueue(const SimQueue&) = delete;
  SimQueue& operator=(const SimQueue&) = delete;

  void push(T item) {
    if (!waiters_.empty()) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      *w.slot = std::move(item);
      engine_->resume_in(0, w.handle);
      return;
    }
    items_.push_back(std::move(item));
  }

  /// Awaitable pop; FIFO among waiters.
  auto pop() {
    struct Awaiter {
      SimQueue& queue;
      std::optional<T> slot;

      bool await_ready() {
        // Only take the fast path when no one is already waiting, to keep
        // FIFO fairness between consumers.
        if (queue.waiters_.empty() && !queue.items_.empty()) {
          slot = std::move(queue.items_.front());
          queue.items_.pop_front();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        queue.waiters_.push_back(Waiter{h, &slot});
      }
      T await_resume() { return std::move(*slot); }
    };
    return Awaiter{*this, std::nullopt};
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  std::size_t waiting_consumers() const { return waiters_.size(); }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::optional<T>* slot;
  };

  Engine* engine_;
  std::deque<T> items_;
  std::deque<Waiter> waiters_;
};

}  // namespace saad::sim
