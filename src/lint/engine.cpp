#include "lint/engine.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "core/log_registry.h"
#include "flow/cfg.h"
#include "lint/flow_rules.h"

namespace saad::lint {

namespace fs = std::filesystem;

namespace {

bool lintable_extension(const fs::path& path) {
  static const std::set<std::string> kExtensions = {
      ".c", ".cc", ".cpp", ".cxx", ".h", ".hh", ".hpp", ".java", ".scala"};
  return kExtensions.count(path.extension().string()) > 0;
}

}  // namespace

std::vector<std::string> collect_sources(const std::vector<std::string>& paths,
                                         std::vector<std::string>* errors) {
  std::vector<std::string> files;
  for (const auto& raw : paths) {
    std::error_code ec;
    const fs::path path(raw);
    if (fs::is_directory(path, ec)) {
      std::vector<std::string> in_dir;
      for (fs::recursive_directory_iterator it(path, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec) && lintable_extension(it->path()))
          in_dir.push_back(it->path().generic_string());
      }
      // Directory iteration order is filesystem-dependent; sort for
      // deterministic diagnostics and baselines.
      std::sort(in_dir.begin(), in_dir.end());
      files.insert(files.end(), in_dir.begin(), in_dir.end());
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path.generic_string());
    } else if (errors != nullptr) {
      errors->push_back(raw + ": not a file or directory");
    }
  }
  return files;
}

LintRun run_lint(const std::vector<std::string>& paths,
                 const core::LogRegistry* registry, const Baseline* baseline,
                 const RuleOptions& options) {
  LintRun run;
  run.files = collect_sources(paths, &run.errors);
  for (const auto& file : run.files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      run.errors.push_back(file + ": cannot read");
      continue;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const std::string source = text.str();
    // Flow construction wants the per-file scan; merge() consumes it after.
    core::ScanResult file_scan = core::scan_source(source, file);
    auto flows = flow::build_stage_flows(source, file, file_scan);
    run.flows.insert(run.flows.end(),
                     std::make_move_iterator(flows.begin()),
                     std::make_move_iterator(flows.end()));
    merge(run.scan, std::move(file_scan));
  }
  run.findings = run_rules(run.scan, registry, options);
  run_flow_rules(run.flows, run.findings);
  sort_diagnostics(run.findings);
  run.fresh = baseline != nullptr ? filter_new(run.findings, *baseline)
                                  : run.findings;
  return run;
}

std::string render_text(const LintRun& run, bool show_fixits) {
  std::ostringstream out;
  std::size_t errors = 0, warnings = 0, notes = 0;
  for (const auto& d : run.fresh) {
    out << d.file << ":" << d.line;
    if (d.column > 0) out << ":" << d.column;
    out << ": " << severity_name(d.severity) << ": " << d.message << " ["
        << d.rule_id << "]\n";
    if (show_fixits && !d.fixit.empty()) out << "    fix-it: " << d.fixit << "\n";
    switch (d.severity) {
      case Severity::kError:
        errors++;
        break;
      case Severity::kWarning:
        warnings++;
        break;
      case Severity::kNote:
        notes++;
        break;
    }
  }
  for (const auto& error : run.errors) out << "saad_lint: error: " << error << "\n";
  const std::size_t baselined = run.findings.size() - run.fresh.size();
  out << run.files.size() << " file(s) scanned: " << errors << " error(s), "
      << warnings << " warning(s), " << notes << " note(s)";
  if (baselined > 0) out << ", " << baselined << " baselined";
  out << "\n";
  return out.str();
}

}  // namespace saad::lint
