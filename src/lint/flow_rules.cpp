#include "lint/flow_rules.h"

#include <string>

namespace saad::lint {

namespace {

Diagnostic make(std::string_view rule_id, const std::string& file, int line,
                int column, std::string message, std::string fixit,
                std::string content_key) {
  Diagnostic d;
  d.rule_id = std::string(rule_id);
  d.severity = find_rule(rule_id)->severity;
  d.file = file;
  d.line = line;
  d.column = column;
  d.message = std::move(message);
  d.fixit = std::move(fixit);
  d.content_key = std::move(content_key);
  return d;
}

std::string quoted(std::string_view text) {
  std::string out = "\"";
  out += text;
  out += '"';
  return out;
}

/// SAAD-FL007: a log point in a node the entry can never reach (code after
/// return/throw/break, or a switch arm no dispatch edge leads to).
void check_unreachable_points(const flow::StageFlow& g,
                              std::vector<Diagnostic>& out) {
  for (const auto& point : g.points) {
    const auto node = static_cast<std::size_t>(point.node);
    if (node >= g.reachable.size() || g.reachable[node]) continue;
    out.push_back(make(
        kRuleUnreachableLogPoint, point.file, point.line, point.column,
        "log point " + quoted(point.template_text) + " in stage " +
            quoted(g.stage) +
            " is statically unreachable; it can never appear in any "
            "signature",
        "move the statement onto a live path or delete it",
        g.stage + ":" + point.template_text));
  }
}

/// SAAD-FL008: within one branch construct, some alternative logs and a
/// sibling (or the implicit fall-through) does not — the two paths produce
/// identical signatures, so flow anomalies between them are invisible.
/// Silent when no alternative logs at all: an uninstrumented branch is not
/// a discriminability loss, and SAAD-ST002 owns wholly silent stages.
void check_branch_coverage(const flow::StageFlow& g,
                           std::vector<Diagnostic>& out) {
  std::vector<char> has_point(g.nodes.size(), 0);
  for (const auto& point : g.points) {
    const auto node = static_cast<std::size_t>(point.node);
    if (node < has_point.size()) has_point[node] = 1;
  }
  for (const auto& branch : g.branches) {
    bool any_covered = false;
    std::vector<const flow::FlowBranch::Alternative*> uncovered;
    for (const auto& alt : branch.alternatives) {
      bool covered = false;
      for (const int node : alt.nodes) {
        if (node >= 0 && static_cast<std::size_t>(node) < has_point.size() &&
            has_point[static_cast<std::size_t>(node)]) {
          covered = true;
          break;
        }
      }
      if (covered)
        any_covered = true;
      else
        uncovered.push_back(&alt);
    }
    if (!any_covered) continue;
    for (const auto* alt : uncovered) {
      out.push_back(make(
          kRuleBranchWithoutLogCoverage, g.file, alt->line, 0,
          "branch alternative at line " + std::to_string(alt->line) +
              " in stage " + quoted(g.stage) +
              " has no log point while a sibling does; signatures cannot "
              "distinguish the two paths",
          "log the alternative too, or accept that this split is invisible "
          "to flow detection",
          g.stage + ":branch@" + std::to_string(branch.line) + ":alt@" +
              std::to_string(alt->line)));
    }
    if (branch.implicit_alternative) {
      out.push_back(make(
          kRuleBranchWithoutLogCoverage, g.file, branch.line, 0,
          "branch at line " + std::to_string(branch.line) + " in stage " +
              quoted(g.stage) +
              " logs on the taken path only; the implicit fall-through "
              "produces the same signature as not reaching it",
          "add an else/default with its own log point, or accept the "
          "blind spot",
          g.stage + ":branch@" + std::to_string(branch.line) + ":implicit"));
    }
  }
}

/// SAAD-FL009: every log point of the stage sits on an error-only path
/// (catch handler, throw-only suffix). Normal executions then carry an
/// empty signature and flow detection in the stage only sees failures.
void check_error_only_logging(const flow::StageFlow& g,
                              std::vector<Diagnostic>& out) {
  if (g.points.empty()) return;
  const flow::FlowPoint* first = nullptr;
  for (const auto& point : g.points) {
    const auto node = static_cast<std::size_t>(point.node);
    if (node >= g.error_only.size()) return;
    if (!g.reachable[node]) continue;  // FL007's finding, not ours
    if (!g.error_only[node]) return;   // a normal-path point exists
    if (first == nullptr) first = &point;
  }
  if (first == nullptr) return;
  out.push_back(make(
      kRuleErrorPathOnlyLogging, first->file, first->line, first->column,
      "every log point of stage " + quoted(g.stage) +
          " sits on an exception/error path; normal executions emit an "
          "empty signature",
      "log at least one point on the normal path (e.g. at stage entry)",
      g.stage + ":error-only"));
}

/// SAAD-FL010: a log point inside a loop. Not a defect — the synopsis
/// counts repetitions — but the per-task count is statically unbounded,
/// which is worth knowing when sizing synopses and reading models.
void check_loop_carried_points(const flow::StageFlow& g,
                               std::vector<Diagnostic>& out) {
  for (const auto& point : g.points) {
    const auto node = static_cast<std::size_t>(point.node);
    if (node >= g.in_loop.size() || !g.in_loop[node]) continue;
    if (node < g.reachable.size() && !g.reachable[node]) continue;
    out.push_back(make(
        kRuleLoopCarriedLogPoint, point.file, point.line, point.column,
        "log point " + quoted(point.template_text) + " in stage " +
            quoted(g.stage) +
            " executes inside a loop; its per-task count is unbounded",
        "fine if intended; hoist it out of the loop if one event per task "
        "is enough",
        g.stage + ":loop:" + point.template_text));
  }
}

}  // namespace

void run_flow_rules(const std::vector<flow::StageFlow>& flows,
                    std::vector<Diagnostic>& out) {
  for (const auto& g : flows) {
    check_unreachable_points(g, out);
    check_branch_coverage(g, out);
    check_error_only_logging(g, out);
    check_loop_carried_points(g, out);
  }
}

}  // namespace saad::lint
