#include "lint/sarif.h"

#include <cstdio>
#include <map>
#include <sstream>

#include "lint/baseline.h"

namespace saad::lint {

namespace {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string quoted(std::string_view text) {
  return "\"" + json_escape(text) + "\"";
}

/// SARIF reportingConfiguration.level values.
std::string_view sarif_level(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "warning";
}

}  // namespace

std::string to_json(const std::vector<Diagnostic>& diagnostics) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const auto& d = diagnostics[i];
    if (i) out << ",";
    out << "\n  {\"rule\":" << quoted(d.rule_id)
        << ",\"severity\":" << quoted(severity_name(d.severity))
        << ",\"file\":" << quoted(d.file) << ",\"line\":" << d.line
        << ",\"column\":" << d.column << ",\"message\":" << quoted(d.message);
    if (!d.fixit.empty()) out << ",\"fixit\":" << quoted(d.fixit);
    out << ",\"fingerprint\":" << quoted(fingerprint(d)) << "}";
  }
  out << "\n]\n";
  return out.str();
}

std::string to_sarif(const std::vector<Diagnostic>& diagnostics) {
  // Rule index for results' ruleIndex back-references.
  std::map<std::string_view, std::size_t> rule_index;
  const auto catalog = rule_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i)
    rule_index[catalog[i].id] = i;

  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"saad_lint\",\n"
      << "          \"version\": \"1.0.0\",\n"
      << "          \"informationUri\": "
         "\"https://example.invalid/saad_lint\",\n"
      << "          \"rules\": [\n";
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const auto& rule = catalog[i];
    out << "            {\"id\": " << quoted(rule.id)
        << ", \"name\": " << quoted(rule.name)
        << ", \"shortDescription\": {\"text\": "
        << quoted(rule.short_description) << "}"
        << ", \"defaultConfiguration\": {\"level\": "
        << quoted(sarif_level(rule.severity)) << "}}"
        << (i + 1 < catalog.size() ? "," : "") << "\n";
  }
  out << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const auto& d = diagnostics[i];
    out << "        {\"ruleId\": " << quoted(d.rule_id);
    if (const auto it = rule_index.find(d.rule_id); it != rule_index.end())
      out << ", \"ruleIndex\": " << it->second;
    out << ", \"level\": " << quoted(sarif_level(d.severity))
        << ", \"message\": {\"text\": " << quoted(d.message) << "}"
        << ", \"locations\": [{\"physicalLocation\": "
        << "{\"artifactLocation\": {\"uri\": " << quoted(d.file) << "}"
        << ", \"region\": {\"startLine\": " << (d.line > 0 ? d.line : 1);
    if (d.column > 0) out << ", \"startColumn\": " << d.column;
    out << "}}}]"
        << ", \"partialFingerprints\": {\"saadLintContent/v1\": "
        << quoted(fingerprint(d)) << "}}"
        << (i + 1 < diagnostics.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace saad::lint
