#include "lint/baseline.h"

#include <charconv>
#include <sstream>

namespace saad::lint {

namespace {

void append_escaped(std::string& out, std::string_view field) {
  for (char c : field) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '|':
        out += "\\|";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

/// Splits a baseline line into its '|'-separated fields, unescaping each.
std::vector<std::string> split_fields(std::string_view line) {
  std::vector<std::string> fields(1);
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\\' && i + 1 < line.size()) {
      const char next = line[i + 1];
      fields.back() += next == 'n' ? '\n' : next;
      ++i;
    } else if (c == '|') {
      fields.emplace_back();
    } else {
      fields.back() += c;
    }
  }
  return fields;
}

}  // namespace

std::string fingerprint(const Diagnostic& diagnostic) {
  std::string out;
  append_escaped(out, diagnostic.rule_id);
  out += '|';
  append_escaped(out, diagnostic.file);
  out += '|';
  append_escaped(out, diagnostic.content_key);
  return out;
}

Baseline make_baseline(const std::vector<Diagnostic>& diagnostics) {
  Baseline baseline;
  for (const auto& diagnostic : diagnostics)
    baseline.counts[fingerprint(diagnostic)]++;
  return baseline;
}

std::string serialize_baseline(const Baseline& baseline) {
  std::ostringstream out;
  out << "# saad_lint baseline v1 — grandfathered findings.\n"
      << "# One `rule|file|content-key|count` per line; regenerate with\n"
      << "#   saad_lint --write-baseline=<this file> <paths...>\n";
  for (const auto& [fp, count] : baseline.counts)
    out << fp << '|' << count << '\n';
  return out.str();
}

bool parse_baseline(std::string_view text, Baseline& baseline) {
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(begin, end - begin);
    begin = end + 1;
    if (line.empty() || line.front() == '#') continue;
    const auto fields = split_fields(line);
    if (fields.size() != 4) return false;
    int count = 0;
    const auto& count_field = fields[3];
    const auto [ptr, ec] = std::from_chars(
        count_field.data(), count_field.data() + count_field.size(), count);
    if (ec != std::errc() || ptr != count_field.data() + count_field.size() ||
        count <= 0) {
      return false;
    }
    std::string fp;
    append_escaped(fp, fields[0]);
    fp += '|';
    append_escaped(fp, fields[1]);
    fp += '|';
    append_escaped(fp, fields[2]);
    baseline.counts[fp] += count;
  }
  return true;
}

std::vector<Diagnostic> filter_new(const std::vector<Diagnostic>& diagnostics,
                                   const Baseline& baseline) {
  std::map<std::string, int> remaining = baseline.counts;
  std::vector<Diagnostic> fresh;
  for (const auto& diagnostic : diagnostics) {
    const auto it = remaining.find(fingerprint(diagnostic));
    if (it != remaining.end() && it->second > 0) {
      it->second--;
      continue;
    }
    fresh.push_back(diagnostic);
  }
  return fresh;
}

}  // namespace saad::lint
