// Lint baselines: grandfathering existing findings while new ones fail CI.
//
// A baseline is a multiset of diagnostic fingerprints. Fingerprints are
// content-based — rule id, file, and the finding's content key (template
// text, stage name, dequeue-site text) — deliberately excluding line
// numbers, so unrelated edits that shift code do not churn the file. The
// multiset semantics matter: a baseline entry with count 2 absorbs at most
// two identical findings; a third is new.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lint/rules.h"

namespace saad::lint {

struct Baseline {
  // fingerprint -> number of grandfathered occurrences
  std::map<std::string, int> counts;
};

/// Stable identity of a finding: "rule|file|content_key" with '|', '\' and
/// newlines escaped.
std::string fingerprint(const Diagnostic& diagnostic);

Baseline make_baseline(const std::vector<Diagnostic>& diagnostics);

/// Serializes to the checked-in text format (one fingerprint + count per
/// line, sorted, '#' comments).
std::string serialize_baseline(const Baseline& baseline);

/// Parses serialize_baseline() output. Returns false on a malformed line
/// (baseline is left with everything parsed up to that point).
bool parse_baseline(std::string_view text, Baseline& baseline);

/// The findings NOT absorbed by the baseline, in input order. Each
/// baselined fingerprint absorbs up to its count.
std::vector<Diagnostic> filter_new(const std::vector<Diagnostic>& diagnostics,
                                   const Baseline& baseline);

}  // namespace saad::lint
