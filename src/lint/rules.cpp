#include "lint/rules.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <tuple>

#include "core/log_registry.h"

namespace saad::lint {

namespace {

constexpr RuleInfo kCatalog[] = {
    {kRuleDuplicateTemplate, "duplicate-template",
     "Two log points share one template: the dictionary aliases them and "
     "their signatures merge.",
     Severity::kError},
    {kRuleStageWithoutLogPoints, "stage-without-log-points",
     "A stage declares no log points, so every execution of it has an "
     "empty signature.",
     Severity::kWarning},
    {kRuleDynamicOnlyTemplate, "dynamic-only-template",
     "A log statement with no static text has an empty, unstable template "
     "dictionary entry.",
     Severity::kError},
    {kRuleLogPointOutsideStage, "log-point-outside-stage",
     "A log statement outside any stage scope is attributed to stage 0.",
     Severity::kWarning},
    {kRuleUnmarkedDequeueSite, "unmarked-dequeue-site",
     "A queue-dequeue call with no nearby SAAD_STAGE marker is a candidate "
     "consumer stage the tracker never sees.",
     Severity::kNote},
    {kRuleRegistrySourceDrift, "registry-source-drift",
     "The log template dictionary and the scanned sources disagree.",
     Severity::kError},
    {kRuleUnreachableLogPoint, "unreachable-log-point",
     "A log point sits on a statically unreachable path; it can never "
     "contribute to any signature.",
     Severity::kError},
    {kRuleBranchWithoutLogCoverage, "branch-without-log-coverage",
     "A branch alternative carries no log point while a sibling does; the "
     "signature cannot tell the two paths apart.",
     Severity::kWarning},
    {kRuleErrorPathOnlyLogging, "error-path-only-logging",
     "Every log point of the stage sits on an exception/error path; normal "
     "executions produce an empty signature.",
     Severity::kWarning},
    {kRuleLoopCarriedLogPoint, "loop-carried-log-point",
     "A log point inside a loop contributes an unbounded per-task count to "
     "the synopsis.",
     Severity::kNote},
};

Diagnostic make(std::string_view rule_id, const std::string& file, int line,
                int column, std::string message, std::string fixit,
                std::string content_key) {
  Diagnostic d;
  d.rule_id = std::string(rule_id);
  d.severity = find_rule(rule_id)->severity;
  d.file = file;
  d.line = line;
  d.column = column;
  d.message = std::move(message);
  d.fixit = std::move(fixit);
  d.content_key = std::move(content_key);
  return d;
}

std::string quoted(std::string_view text) {
  std::string out = "\"";
  out += text;
  out += '"';
  return out;
}

void check_duplicate_templates(const core::ScanResult& scan,
                               std::vector<Diagnostic>& out) {
  std::map<std::string, const core::ScannedLogPoint*> first;
  for (const auto& point : scan.log_points) {
    if (point.dynamic_only) continue;
    auto [it, inserted] = first.emplace(point.template_text, &point);
    if (inserted) continue;
    const auto* original = it->second;
    out.push_back(make(
        kRuleDuplicateTemplate, point.file, point.line, point.column,
        "duplicate log template " + quoted(point.template_text) +
            " (first seen at " + original->file + ":" +
            std::to_string(original->line) +
            "); both statements alias one dictionary entry",
        "make the static text unique, e.g. prefix it with the stage or "
        "operation name",
        point.template_text));
  }
}

void check_stages_without_log_points(const core::ScanResult& scan,
                                     std::vector<Diagnostic>& out) {
  std::set<std::string> stages_with_points;
  std::set<std::string> files_with_points;
  for (const auto& point : scan.log_points) {
    if (!point.stage.empty()) stages_with_points.insert(point.stage);
    files_with_points.insert(point.file);
  }
  std::set<std::string> reported;
  for (const auto& stage : scan.stages) {
    if (stages_with_points.count(stage.name)) continue;
    // A file with no scanned log points at all is not instrumented in the
    // scanner's idiom (e.g. C++ sources carrying SAAD_STAGE markers purely
    // for stage attribution); an empty-signature warning there is noise.
    if (!files_with_points.count(stage.file)) continue;
    if (!reported.insert(stage.name).second) continue;
    out.push_back(make(
        kRuleStageWithoutLogPoints, stage.file, stage.line, stage.column,
        "stage " + quoted(stage.name) +
            " has no log points; its per-execution signature is always "
            "empty and anomalies in it are invisible",
        "add at least one log statement inside the stage, or drop the "
        "marker if it is not a real stage",
        stage.name));
  }
}

void check_dynamic_only_templates(const core::ScanResult& scan,
                                  std::vector<Diagnostic>& out) {
  for (const auto& point : scan.log_points) {
    if (!point.dynamic_only) continue;
    out.push_back(make(
        kRuleDynamicOnlyTemplate, point.file, point.line, point.column,
        "log." + point.level +
            " call has no static string literal; its template dictionary "
            "entry would be empty and the log point unstable",
        "start the message with a static literal describing the event",
        point.stage + ":" + point.level));
  }
}

void check_log_points_outside_stages(const core::ScanResult& scan,
                                     std::vector<Diagnostic>& out) {
  for (const auto& point : scan.log_points) {
    if (!point.stage.empty() || point.dynamic_only) continue;
    out.push_back(make(
        kRuleLogPointOutsideStage, point.file, point.line, point.column,
        "log statement " + quoted(point.template_text) +
            " is outside any stage scope; its events fall into stage 0",
        "move the statement inside a Runnable class or mark the enclosing "
        "code with SAAD_STAGE(\"...\")",
        point.template_text));
  }
}

void check_unmarked_dequeue_sites(const core::ScanResult& scan,
                                  const RuleOptions& options,
                                  std::vector<Diagnostic>& out) {
  for (const auto& site : scan.dequeue_sites) {
    bool marked = false;
    for (const auto& stage : scan.stages) {
      if (!stage.explicit_marker || stage.file != site.file) continue;
      if (std::abs(stage.line - site.line) <= options.dequeue_marker_window) {
        marked = true;
        break;
      }
    }
    if (marked) continue;
    out.push_back(make(
        kRuleUnmarkedDequeueSite, site.file, site.line, site.column,
        "dequeue call `" + site.text +
            "` has no SAAD_STAGE marker nearby; if this begins a consumer "
            "stage, the tracker will not see it",
        "confirm by inspection; mark a real consumer-stage beginning with "
        "SAAD_STAGE(\"...\")",
        site.text));
  }
}

void check_registry_drift(const core::ScanResult& scan,
                          const core::LogRegistry& registry,
                          std::vector<Diagnostic>& out) {
  std::set<std::string> scanned;
  for (const auto& point : scan.log_points)
    if (!point.dynamic_only) scanned.insert(point.template_text);

  std::set<std::string> registered;
  for (std::size_t i = 0; i < registry.num_log_points(); ++i) {
    const auto& info =
        registry.log_point(static_cast<core::LogPointId>(i));
    registered.insert(info.template_text);
    if (scanned.count(info.template_text)) continue;
    out.push_back(make(
        kRuleRegistrySourceDrift, info.file, info.line, 0,
        "registry template " + quoted(info.template_text) +
            " does not appear in the scanned sources; the dictionary entry "
            "is stale",
        "re-run the instrumentation pass to rebuild the registry",
        "registry:" + info.template_text));
  }
  for (const auto& point : scan.log_points) {
    if (point.dynamic_only || registered.count(point.template_text)) continue;
    out.push_back(make(
        kRuleRegistrySourceDrift, point.file, point.line, point.column,
        "log template " + quoted(point.template_text) +
            " is not registered; events from it cannot be decoded against "
            "this dictionary",
        "re-run the instrumentation pass to rebuild the registry",
        "source:" + point.template_text));
  }
}

}  // namespace

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "warning";
}

std::span<const RuleInfo> rule_catalog() { return kCatalog; }

const RuleInfo* find_rule(std::string_view id) {
  for (const auto& rule : kCatalog)
    if (rule.id == id) return &rule;
  return nullptr;
}

std::vector<Diagnostic> run_rules(const core::ScanResult& scan,
                                  const core::LogRegistry* registry,
                                  const RuleOptions& options) {
  std::vector<Diagnostic> out;
  check_duplicate_templates(scan, out);
  check_stages_without_log_points(scan, out);
  check_dynamic_only_templates(scan, out);
  check_log_points_outside_stages(scan, out);
  check_unmarked_dequeue_sites(scan, options, out);
  if (registry != nullptr) check_registry_drift(scan, *registry, out);
  sort_diagnostics(out);
  return out;
}

void sort_diagnostics(std::vector<Diagnostic>& diagnostics) {
  std::sort(diagnostics.begin(), diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.column, a.rule_id,
                              a.content_key) <
                     std::tie(b.file, b.line, b.column, b.rule_id,
                              b.content_key);
            });
}

}  // namespace saad::lint
