// CFG-aware lint rules (SAAD-FL007..FL010), evaluated over the stage-flow
// graphs built by src/flow. Separate from rules.h so the scan-level rules
// keep no dependency on the flow layer.
#pragma once

#include <vector>

#include "flow/cfg.h"
#include "lint/rules.h"

namespace saad::lint {

/// Runs the four flow rules over the given stage CFGs and appends the
/// diagnostics (unsorted; callers sort the merged set).
void run_flow_rules(const std::vector<flow::StageFlow>& flows,
                    std::vector<Diagnostic>& out);

}  // namespace saad::lint
