// Instrumentation lint: the rule catalog and diagnostics model.
//
// SAAD's detection quality is bounded by its instrumentation (§4.1.1): a
// duplicate template aliases two log points into one dictionary entry, a
// log statement outside any stage is attributed to stage 0, a dynamic-only
// statement has an empty (unstable) template, and an unmarked dequeue site
// is a consumer stage the tracker never sees. Each of those silently
// corrupts signatures and the flow/performance tests downstream. The rules
// here judge a ScanResult (and optionally the live LogRegistry) statically,
// before a trace is ever recorded.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/source_scan.h"

namespace saad::core {
class LogRegistry;
}

namespace saad::lint {

enum class Severity { kNote = 0, kWarning = 1, kError = 2 };

std::string_view severity_name(Severity severity);  // "note" | "warning" | ...

/// Stable rule identity. Ids never change once shipped — baselines and CI
/// gates key on them.
struct RuleInfo {
  std::string_view id;     // e.g. "SAAD-LP001"
  std::string_view name;   // e.g. "duplicate-template"
  std::string_view short_description;
  Severity severity;
};

inline constexpr std::string_view kRuleDuplicateTemplate = "SAAD-LP001";
inline constexpr std::string_view kRuleStageWithoutLogPoints = "SAAD-ST002";
inline constexpr std::string_view kRuleDynamicOnlyTemplate = "SAAD-LP003";
inline constexpr std::string_view kRuleLogPointOutsideStage = "SAAD-LP004";
inline constexpr std::string_view kRuleUnmarkedDequeueSite = "SAAD-DQ005";
inline constexpr std::string_view kRuleRegistrySourceDrift = "SAAD-RG006";
inline constexpr std::string_view kRuleUnreachableLogPoint = "SAAD-FL007";
inline constexpr std::string_view kRuleBranchWithoutLogCoverage = "SAAD-FL008";
inline constexpr std::string_view kRuleErrorPathOnlyLogging = "SAAD-FL009";
inline constexpr std::string_view kRuleLoopCarriedLogPoint = "SAAD-FL010";

/// The full catalog, in rule-id order. SARIF output embeds this as the
/// tool's rule metadata.
std::span<const RuleInfo> rule_catalog();

/// Catalog lookup; nullptr for an unknown id.
const RuleInfo* find_rule(std::string_view id);

struct Diagnostic {
  std::string rule_id;
  Severity severity = Severity::kWarning;
  std::string file;
  int line = 0;
  int column = 0;
  std::string message;
  std::string fixit;  // empty when no hint applies
  // Content-based key (template text, stage name, site text): stable across
  // unrelated edits that move lines, so baselines do not churn.
  std::string content_key;
};

struct RuleOptions {
  // SAAD-DQ005: a dequeue site is "marked" when an explicit SAAD_STAGE
  // marker sits within this many lines of it in the same file.
  int dequeue_marker_window = 3;
};

/// Runs every rule over the scan (and the registry when non-null, which
/// enables SAAD-RG006). Diagnostics come back sorted by
/// (file, line, column, rule id).
std::vector<Diagnostic> run_rules(const core::ScanResult& scan,
                                  const core::LogRegistry* registry,
                                  const RuleOptions& options = {});

void sort_diagnostics(std::vector<Diagnostic>& diagnostics);

}  // namespace saad::lint
