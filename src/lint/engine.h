// The lint engine: files in, ordered diagnostics out.
//
// Ties the layers together — walks the requested files/directories, runs
// the span-aware source scan over each, evaluates the rule catalog (plus
// SAAD-RG006 when a registry is supplied), applies the baseline, and
// renders the result. The CLI in tools/saad_lint.cpp is a thin shell over
// this so tests can drive the whole pipeline in-process.
#pragma once

#include <string>
#include <vector>

#include "core/source_scan.h"
#include "flow/cfg.h"
#include "lint/baseline.h"
#include "lint/rules.h"

namespace saad::core {
class LogRegistry;
}

namespace saad::lint {

struct LintRun {
  core::ScanResult scan;              // merged over every scanned file
  std::vector<flow::StageFlow> flows; // stage CFGs, file then source order
  std::vector<Diagnostic> findings;   // all diagnostics, sorted
  std::vector<Diagnostic> fresh;      // findings not absorbed by baseline
  std::vector<std::string> files;     // what was scanned, in scan order
  std::vector<std::string> errors;    // unreadable paths
};

/// Expands files and directories (recursively) into lintable sources:
/// .c/.cc/.cpp/.cxx/.h/.hh/.hpp/.java/.scala. Explicitly named files are
/// taken as-is regardless of extension. Missing paths land in `errors`.
std::vector<std::string> collect_sources(const std::vector<std::string>& paths,
                                         std::vector<std::string>* errors);

/// Scans and lints `paths`. `registry` (nullable) enables SAAD-RG006;
/// `baseline` (nullable) splits findings into grandfathered vs fresh —
/// with no baseline every finding is fresh.
LintRun run_lint(const std::vector<std::string>& paths,
                 const core::LogRegistry* registry, const Baseline* baseline,
                 const RuleOptions& options = {});

/// Human-readable report: `file:line:col: severity: message [rule]` lines,
/// fix-it hints indented beneath, and a summary. Baselined findings are
/// omitted; the summary counts them.
std::string render_text(const LintRun& run, bool show_fixits = true);

}  // namespace saad::lint
