// Machine-readable diagnostic output: plain JSON and SARIF 2.1.0.
//
// SARIF (Static Analysis Results Interchange Format) is what CI systems
// (GitHub code scanning among them) ingest: the emitted document carries
// the full rule catalog as tool metadata, one result per diagnostic with a
// physical location, and a content-based partial fingerprint so viewers
// can track findings across commits the same way our baseline does.
#pragma once

#include <string>
#include <vector>

#include "lint/rules.h"

namespace saad::lint {

/// A flat JSON array of diagnostic objects, for scripting.
std::string to_json(const std::vector<Diagnostic>& diagnostics);

/// A SARIF 2.1.0 document with the rule catalog embedded in
/// runs[0].tool.driver.rules and one result per diagnostic.
std::string to_sarif(const std::vector<Diagnostic>& diagnostics);

}  // namespace saad::lint
