file(REMOVE_RECURSE
  "libsaad_sim.a"
)
