# Empty compiler generated dependencies file for saad_sim.
# This may be replaced when dependencies are built.
