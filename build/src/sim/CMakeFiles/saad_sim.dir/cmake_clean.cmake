file(REMOVE_RECURSE
  "CMakeFiles/saad_sim.dir/engine.cpp.o"
  "CMakeFiles/saad_sim.dir/engine.cpp.o.d"
  "CMakeFiles/saad_sim.dir/resource.cpp.o"
  "CMakeFiles/saad_sim.dir/resource.cpp.o.d"
  "CMakeFiles/saad_sim.dir/staged.cpp.o"
  "CMakeFiles/saad_sim.dir/staged.cpp.o.d"
  "libsaad_sim.a"
  "libsaad_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saad_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
