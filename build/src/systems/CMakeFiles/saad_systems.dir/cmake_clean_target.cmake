file(REMOVE_RECURSE
  "libsaad_systems.a"
)
