file(REMOVE_RECURSE
  "CMakeFiles/saad_systems.dir/cassandra/cassandra.cpp.o"
  "CMakeFiles/saad_systems.dir/cassandra/cassandra.cpp.o.d"
  "CMakeFiles/saad_systems.dir/hbase/hbase.cpp.o"
  "CMakeFiles/saad_systems.dir/hbase/hbase.cpp.o.d"
  "CMakeFiles/saad_systems.dir/hdfs/hdfs.cpp.o"
  "CMakeFiles/saad_systems.dir/hdfs/hdfs.cpp.o.d"
  "CMakeFiles/saad_systems.dir/host.cpp.o"
  "CMakeFiles/saad_systems.dir/host.cpp.o.d"
  "libsaad_systems.a"
  "libsaad_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saad_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
