# Empty dependencies file for saad_systems.
# This may be replaced when dependencies are built.
