file(REMOVE_RECURSE
  "CMakeFiles/saad_common.dir/clock.cpp.o"
  "CMakeFiles/saad_common.dir/clock.cpp.o.d"
  "CMakeFiles/saad_common.dir/histogram.cpp.o"
  "CMakeFiles/saad_common.dir/histogram.cpp.o.d"
  "CMakeFiles/saad_common.dir/rng.cpp.o"
  "CMakeFiles/saad_common.dir/rng.cpp.o.d"
  "CMakeFiles/saad_common.dir/table.cpp.o"
  "CMakeFiles/saad_common.dir/table.cpp.o.d"
  "libsaad_common.a"
  "libsaad_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saad_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
