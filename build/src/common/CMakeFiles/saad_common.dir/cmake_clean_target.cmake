file(REMOVE_RECURSE
  "libsaad_common.a"
)
