# Empty compiler generated dependencies file for saad_common.
# This may be replaced when dependencies are built.
