file(REMOVE_RECURSE
  "CMakeFiles/saad_lsm.dir/memtable.cpp.o"
  "CMakeFiles/saad_lsm.dir/memtable.cpp.o.d"
  "CMakeFiles/saad_lsm.dir/sstable.cpp.o"
  "CMakeFiles/saad_lsm.dir/sstable.cpp.o.d"
  "CMakeFiles/saad_lsm.dir/store.cpp.o"
  "CMakeFiles/saad_lsm.dir/store.cpp.o.d"
  "CMakeFiles/saad_lsm.dir/wal.cpp.o"
  "CMakeFiles/saad_lsm.dir/wal.cpp.o.d"
  "libsaad_lsm.a"
  "libsaad_lsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saad_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
