file(REMOVE_RECURSE
  "libsaad_lsm.a"
)
