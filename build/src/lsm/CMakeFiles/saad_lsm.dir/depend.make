# Empty dependencies file for saad_lsm.
# This may be replaced when dependencies are built.
