file(REMOVE_RECURSE
  "libsaad_baseline.a"
)
