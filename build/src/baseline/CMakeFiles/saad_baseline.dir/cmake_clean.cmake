file(REMOVE_RECURSE
  "CMakeFiles/saad_baseline.dir/error_monitor.cpp.o"
  "CMakeFiles/saad_baseline.dir/error_monitor.cpp.o.d"
  "CMakeFiles/saad_baseline.dir/log_renderer.cpp.o"
  "CMakeFiles/saad_baseline.dir/log_renderer.cpp.o.d"
  "CMakeFiles/saad_baseline.dir/pca_detector.cpp.o"
  "CMakeFiles/saad_baseline.dir/pca_detector.cpp.o.d"
  "CMakeFiles/saad_baseline.dir/text_miner.cpp.o"
  "CMakeFiles/saad_baseline.dir/text_miner.cpp.o.d"
  "libsaad_baseline.a"
  "libsaad_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saad_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
