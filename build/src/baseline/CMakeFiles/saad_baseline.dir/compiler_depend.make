# Empty compiler generated dependencies file for saad_baseline.
# This may be replaced when dependencies are built.
