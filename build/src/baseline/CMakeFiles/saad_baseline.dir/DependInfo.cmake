
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/error_monitor.cpp" "src/baseline/CMakeFiles/saad_baseline.dir/error_monitor.cpp.o" "gcc" "src/baseline/CMakeFiles/saad_baseline.dir/error_monitor.cpp.o.d"
  "/root/repo/src/baseline/log_renderer.cpp" "src/baseline/CMakeFiles/saad_baseline.dir/log_renderer.cpp.o" "gcc" "src/baseline/CMakeFiles/saad_baseline.dir/log_renderer.cpp.o.d"
  "/root/repo/src/baseline/pca_detector.cpp" "src/baseline/CMakeFiles/saad_baseline.dir/pca_detector.cpp.o" "gcc" "src/baseline/CMakeFiles/saad_baseline.dir/pca_detector.cpp.o.d"
  "/root/repo/src/baseline/text_miner.cpp" "src/baseline/CMakeFiles/saad_baseline.dir/text_miner.cpp.o" "gcc" "src/baseline/CMakeFiles/saad_baseline.dir/text_miner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/saad_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/saad_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/saad_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
