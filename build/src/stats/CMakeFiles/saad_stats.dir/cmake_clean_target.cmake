file(REMOVE_RECURSE
  "libsaad_stats.a"
)
