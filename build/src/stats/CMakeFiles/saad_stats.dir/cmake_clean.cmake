file(REMOVE_RECURSE
  "CMakeFiles/saad_stats.dir/descriptive.cpp.o"
  "CMakeFiles/saad_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/saad_stats.dir/kfold.cpp.o"
  "CMakeFiles/saad_stats.dir/kfold.cpp.o.d"
  "CMakeFiles/saad_stats.dir/p2_quantile.cpp.o"
  "CMakeFiles/saad_stats.dir/p2_quantile.cpp.o.d"
  "CMakeFiles/saad_stats.dir/special.cpp.o"
  "CMakeFiles/saad_stats.dir/special.cpp.o.d"
  "CMakeFiles/saad_stats.dir/tests.cpp.o"
  "CMakeFiles/saad_stats.dir/tests.cpp.o.d"
  "libsaad_stats.a"
  "libsaad_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saad_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
