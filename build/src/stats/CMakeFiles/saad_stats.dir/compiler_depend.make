# Empty compiler generated dependencies file for saad_stats.
# This may be replaced when dependencies are built.
