file(REMOVE_RECURSE
  "libsaad_faults.a"
)
