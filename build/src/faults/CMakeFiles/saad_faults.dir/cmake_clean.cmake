file(REMOVE_RECURSE
  "CMakeFiles/saad_faults.dir/fault_plane.cpp.o"
  "CMakeFiles/saad_faults.dir/fault_plane.cpp.o.d"
  "libsaad_faults.a"
  "libsaad_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saad_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
