# Empty dependencies file for saad_faults.
# This may be replaced when dependencies are built.
