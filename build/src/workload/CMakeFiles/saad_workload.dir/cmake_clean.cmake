file(REMOVE_RECURSE
  "CMakeFiles/saad_workload.dir/ycsb.cpp.o"
  "CMakeFiles/saad_workload.dir/ycsb.cpp.o.d"
  "libsaad_workload.a"
  "libsaad_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saad_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
