# Empty dependencies file for saad_workload.
# This may be replaced when dependencies are built.
