file(REMOVE_RECURSE
  "libsaad_workload.a"
)
