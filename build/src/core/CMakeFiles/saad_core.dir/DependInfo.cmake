
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/channel.cpp" "src/core/CMakeFiles/saad_core.dir/channel.cpp.o" "gcc" "src/core/CMakeFiles/saad_core.dir/channel.cpp.o.d"
  "/root/repo/src/core/detector.cpp" "src/core/CMakeFiles/saad_core.dir/detector.cpp.o" "gcc" "src/core/CMakeFiles/saad_core.dir/detector.cpp.o.d"
  "/root/repo/src/core/feature.cpp" "src/core/CMakeFiles/saad_core.dir/feature.cpp.o" "gcc" "src/core/CMakeFiles/saad_core.dir/feature.cpp.o.d"
  "/root/repo/src/core/incidents.cpp" "src/core/CMakeFiles/saad_core.dir/incidents.cpp.o" "gcc" "src/core/CMakeFiles/saad_core.dir/incidents.cpp.o.d"
  "/root/repo/src/core/log_registry.cpp" "src/core/CMakeFiles/saad_core.dir/log_registry.cpp.o" "gcc" "src/core/CMakeFiles/saad_core.dir/log_registry.cpp.o.d"
  "/root/repo/src/core/logger.cpp" "src/core/CMakeFiles/saad_core.dir/logger.cpp.o" "gcc" "src/core/CMakeFiles/saad_core.dir/logger.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/saad_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/saad_core.dir/model.cpp.o.d"
  "/root/repo/src/core/model_io.cpp" "src/core/CMakeFiles/saad_core.dir/model_io.cpp.o" "gcc" "src/core/CMakeFiles/saad_core.dir/model_io.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/saad_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/saad_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/saad_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/saad_core.dir/report.cpp.o.d"
  "/root/repo/src/core/report_html.cpp" "src/core/CMakeFiles/saad_core.dir/report_html.cpp.o" "gcc" "src/core/CMakeFiles/saad_core.dir/report_html.cpp.o.d"
  "/root/repo/src/core/report_json.cpp" "src/core/CMakeFiles/saad_core.dir/report_json.cpp.o" "gcc" "src/core/CMakeFiles/saad_core.dir/report_json.cpp.o.d"
  "/root/repo/src/core/source_scan.cpp" "src/core/CMakeFiles/saad_core.dir/source_scan.cpp.o" "gcc" "src/core/CMakeFiles/saad_core.dir/source_scan.cpp.o.d"
  "/root/repo/src/core/synopsis.cpp" "src/core/CMakeFiles/saad_core.dir/synopsis.cpp.o" "gcc" "src/core/CMakeFiles/saad_core.dir/synopsis.cpp.o.d"
  "/root/repo/src/core/trace_io.cpp" "src/core/CMakeFiles/saad_core.dir/trace_io.cpp.o" "gcc" "src/core/CMakeFiles/saad_core.dir/trace_io.cpp.o.d"
  "/root/repo/src/core/tracker.cpp" "src/core/CMakeFiles/saad_core.dir/tracker.cpp.o" "gcc" "src/core/CMakeFiles/saad_core.dir/tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/saad_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/saad_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
