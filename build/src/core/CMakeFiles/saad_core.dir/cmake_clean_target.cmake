file(REMOVE_RECURSE
  "libsaad_core.a"
)
