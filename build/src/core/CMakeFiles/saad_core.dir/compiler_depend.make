# Empty compiler generated dependencies file for saad_core.
# This may be replaced when dependencies are built.
