# Empty dependencies file for hdfs_write_pipeline.
# This may be replaced when dependencies are built.
