file(REMOVE_RECURSE
  "CMakeFiles/hdfs_write_pipeline.dir/hdfs_write_pipeline.cpp.o"
  "CMakeFiles/hdfs_write_pipeline.dir/hdfs_write_pipeline.cpp.o.d"
  "hdfs_write_pipeline"
  "hdfs_write_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdfs_write_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
