# Empty compiler generated dependencies file for cassandra_fault_drill.
# This may be replaced when dependencies are built.
