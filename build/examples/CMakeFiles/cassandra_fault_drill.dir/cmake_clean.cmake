file(REMOVE_RECURSE
  "CMakeFiles/cassandra_fault_drill.dir/cassandra_fault_drill.cpp.o"
  "CMakeFiles/cassandra_fault_drill.dir/cassandra_fault_drill.cpp.o.d"
  "cassandra_fault_drill"
  "cassandra_fault_drill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cassandra_fault_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
