# Empty compiler generated dependencies file for saad_instrument.
# This may be replaced when dependencies are built.
