file(REMOVE_RECURSE
  "CMakeFiles/saad_instrument.dir/saad_instrument.cpp.o"
  "CMakeFiles/saad_instrument.dir/saad_instrument.cpp.o.d"
  "saad_instrument"
  "saad_instrument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saad_instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
