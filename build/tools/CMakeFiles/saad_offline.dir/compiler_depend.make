# Empty compiler generated dependencies file for saad_offline.
# This may be replaced when dependencies are built.
