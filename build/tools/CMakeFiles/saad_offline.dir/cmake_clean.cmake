file(REMOVE_RECURSE
  "CMakeFiles/saad_offline.dir/saad_offline.cpp.o"
  "CMakeFiles/saad_offline.dir/saad_offline.cpp.o.d"
  "saad_offline"
  "saad_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saad_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
