# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/saad_tests[1]_include.cmake")
add_test(saad_instrument_smoke "sh" "-c" "/root/repo/build/tools/saad_instrument /root/repo/build/tests/inst_fixture.java | grep -q 'hello world'")
set_tests_properties(saad_instrument_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;58;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(saad_offline_workflow_smoke "sh" "-c" "/root/repo/build/tools/saad_offline record --system=cassandra --minutes=2 --trace=smoke.trc --registry=smoke.reg --seed=9 && /root/repo/build/tools/saad_offline train --trace=smoke.trc --model=smoke.mdl && /root/repo/build/tools/saad_offline info --trace=smoke.trc")
set_tests_properties(saad_offline_workflow_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;60;add_test;/root/repo/tests/CMakeLists.txt;0;")
