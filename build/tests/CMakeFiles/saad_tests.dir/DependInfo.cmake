
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baseline/baseline_test.cpp" "tests/CMakeFiles/saad_tests.dir/baseline/baseline_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/baseline/baseline_test.cpp.o.d"
  "/root/repo/tests/baseline/pca_detector_test.cpp" "tests/CMakeFiles/saad_tests.dir/baseline/pca_detector_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/baseline/pca_detector_test.cpp.o.d"
  "/root/repo/tests/common/clock_test.cpp" "tests/CMakeFiles/saad_tests.dir/common/clock_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/common/clock_test.cpp.o.d"
  "/root/repo/tests/common/histogram_test.cpp" "tests/CMakeFiles/saad_tests.dir/common/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/common/histogram_test.cpp.o.d"
  "/root/repo/tests/common/rng_test.cpp" "tests/CMakeFiles/saad_tests.dir/common/rng_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/common/rng_test.cpp.o.d"
  "/root/repo/tests/common/table_test.cpp" "tests/CMakeFiles/saad_tests.dir/common/table_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/common/table_test.cpp.o.d"
  "/root/repo/tests/core/channel_test.cpp" "tests/CMakeFiles/saad_tests.dir/core/channel_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/core/channel_test.cpp.o.d"
  "/root/repo/tests/core/detector_property_test.cpp" "tests/CMakeFiles/saad_tests.dir/core/detector_property_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/core/detector_property_test.cpp.o.d"
  "/root/repo/tests/core/detector_test.cpp" "tests/CMakeFiles/saad_tests.dir/core/detector_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/core/detector_test.cpp.o.d"
  "/root/repo/tests/core/feature_test.cpp" "tests/CMakeFiles/saad_tests.dir/core/feature_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/core/feature_test.cpp.o.d"
  "/root/repo/tests/core/incidents_test.cpp" "tests/CMakeFiles/saad_tests.dir/core/incidents_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/core/incidents_test.cpp.o.d"
  "/root/repo/tests/core/log_registry_test.cpp" "tests/CMakeFiles/saad_tests.dir/core/log_registry_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/core/log_registry_test.cpp.o.d"
  "/root/repo/tests/core/logger_test.cpp" "tests/CMakeFiles/saad_tests.dir/core/logger_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/core/logger_test.cpp.o.d"
  "/root/repo/tests/core/model_io_test.cpp" "tests/CMakeFiles/saad_tests.dir/core/model_io_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/core/model_io_test.cpp.o.d"
  "/root/repo/tests/core/model_test.cpp" "tests/CMakeFiles/saad_tests.dir/core/model_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/core/model_test.cpp.o.d"
  "/root/repo/tests/core/monitor_test.cpp" "tests/CMakeFiles/saad_tests.dir/core/monitor_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/core/monitor_test.cpp.o.d"
  "/root/repo/tests/core/offline_workflow_test.cpp" "tests/CMakeFiles/saad_tests.dir/core/offline_workflow_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/core/offline_workflow_test.cpp.o.d"
  "/root/repo/tests/core/report_html_test.cpp" "tests/CMakeFiles/saad_tests.dir/core/report_html_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/core/report_html_test.cpp.o.d"
  "/root/repo/tests/core/report_json_test.cpp" "tests/CMakeFiles/saad_tests.dir/core/report_json_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/core/report_json_test.cpp.o.d"
  "/root/repo/tests/core/report_test.cpp" "tests/CMakeFiles/saad_tests.dir/core/report_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/core/report_test.cpp.o.d"
  "/root/repo/tests/core/source_scan_test.cpp" "tests/CMakeFiles/saad_tests.dir/core/source_scan_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/core/source_scan_test.cpp.o.d"
  "/root/repo/tests/core/synopsis_test.cpp" "tests/CMakeFiles/saad_tests.dir/core/synopsis_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/core/synopsis_test.cpp.o.d"
  "/root/repo/tests/core/trace_io_test.cpp" "tests/CMakeFiles/saad_tests.dir/core/trace_io_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/core/trace_io_test.cpp.o.d"
  "/root/repo/tests/core/tracker_property_test.cpp" "tests/CMakeFiles/saad_tests.dir/core/tracker_property_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/core/tracker_property_test.cpp.o.d"
  "/root/repo/tests/core/tracker_test.cpp" "tests/CMakeFiles/saad_tests.dir/core/tracker_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/core/tracker_test.cpp.o.d"
  "/root/repo/tests/faults/fault_plane_test.cpp" "tests/CMakeFiles/saad_tests.dir/faults/fault_plane_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/faults/fault_plane_test.cpp.o.d"
  "/root/repo/tests/lsm/store_property_test.cpp" "tests/CMakeFiles/saad_tests.dir/lsm/store_property_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/lsm/store_property_test.cpp.o.d"
  "/root/repo/tests/lsm/store_test.cpp" "tests/CMakeFiles/saad_tests.dir/lsm/store_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/lsm/store_test.cpp.o.d"
  "/root/repo/tests/sim/engine_test.cpp" "tests/CMakeFiles/saad_tests.dir/sim/engine_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/sim/engine_test.cpp.o.d"
  "/root/repo/tests/sim/oneshot_test.cpp" "tests/CMakeFiles/saad_tests.dir/sim/oneshot_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/sim/oneshot_test.cpp.o.d"
  "/root/repo/tests/sim/queue_test.cpp" "tests/CMakeFiles/saad_tests.dir/sim/queue_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/sim/queue_test.cpp.o.d"
  "/root/repo/tests/sim/resource_test.cpp" "tests/CMakeFiles/saad_tests.dir/sim/resource_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/sim/resource_test.cpp.o.d"
  "/root/repo/tests/stats/descriptive_test.cpp" "tests/CMakeFiles/saad_tests.dir/stats/descriptive_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/stats/descriptive_test.cpp.o.d"
  "/root/repo/tests/stats/kfold_test.cpp" "tests/CMakeFiles/saad_tests.dir/stats/kfold_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/stats/kfold_test.cpp.o.d"
  "/root/repo/tests/stats/p2_quantile_test.cpp" "tests/CMakeFiles/saad_tests.dir/stats/p2_quantile_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/stats/p2_quantile_test.cpp.o.d"
  "/root/repo/tests/stats/special_test.cpp" "tests/CMakeFiles/saad_tests.dir/stats/special_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/stats/special_test.cpp.o.d"
  "/root/repo/tests/stats/tests_test.cpp" "tests/CMakeFiles/saad_tests.dir/stats/tests_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/stats/tests_test.cpp.o.d"
  "/root/repo/tests/systems/cassandra_test.cpp" "tests/CMakeFiles/saad_tests.dir/systems/cassandra_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/systems/cassandra_test.cpp.o.d"
  "/root/repo/tests/systems/cassandra_unit_test.cpp" "tests/CMakeFiles/saad_tests.dir/systems/cassandra_unit_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/systems/cassandra_unit_test.cpp.o.d"
  "/root/repo/tests/systems/hbase_hdfs_test.cpp" "tests/CMakeFiles/saad_tests.dir/systems/hbase_hdfs_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/systems/hbase_hdfs_test.cpp.o.d"
  "/root/repo/tests/systems/hbase_unit_test.cpp" "tests/CMakeFiles/saad_tests.dir/systems/hbase_unit_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/systems/hbase_unit_test.cpp.o.d"
  "/root/repo/tests/systems/hdfs_test.cpp" "tests/CMakeFiles/saad_tests.dir/systems/hdfs_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/systems/hdfs_test.cpp.o.d"
  "/root/repo/tests/systems/host_test.cpp" "tests/CMakeFiles/saad_tests.dir/systems/host_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/systems/host_test.cpp.o.d"
  "/root/repo/tests/workload/ycsb_test.cpp" "tests/CMakeFiles/saad_tests.dir/workload/ycsb_test.cpp.o" "gcc" "tests/CMakeFiles/saad_tests.dir/workload/ycsb_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/saad_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/saad_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/saad_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/saad_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/saad_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/lsm/CMakeFiles/saad_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/saad_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/systems/CMakeFiles/saad_systems.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/saad_baseline.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
