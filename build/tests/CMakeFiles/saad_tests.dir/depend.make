# Empty dependencies file for saad_tests.
# This may be replaced when dependencies are built.
