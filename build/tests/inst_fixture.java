class Foo implements Runnable { void run() { LOG.info("hello world"); } }
