# Empty compiler generated dependencies file for saad_bench_harness.
# This may be replaced when dependencies are built.
