file(REMOVE_RECURSE
  "../lib/libsaad_bench_harness.a"
)
