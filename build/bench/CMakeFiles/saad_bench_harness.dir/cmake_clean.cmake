file(REMOVE_RECURSE
  "../lib/libsaad_bench_harness.a"
  "../lib/libsaad_bench_harness.pdb"
  "CMakeFiles/saad_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/saad_bench_harness.dir/harness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saad_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
