# Empty compiler generated dependencies file for fig11_false_positives.
# This may be replaced when dependencies are built.
