file(REMOVE_RECURSE
  "CMakeFiles/fig11_false_positives.dir/fig11_false_positives.cpp.o"
  "CMakeFiles/fig11_false_positives.dir/fig11_false_positives.cpp.o.d"
  "fig11_false_positives"
  "fig11_false_positives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_false_positives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
