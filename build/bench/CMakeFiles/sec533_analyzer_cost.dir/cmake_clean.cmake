file(REMOVE_RECURSE
  "CMakeFiles/sec533_analyzer_cost.dir/sec533_analyzer_cost.cpp.o"
  "CMakeFiles/sec533_analyzer_cost.dir/sec533_analyzer_cost.cpp.o.d"
  "sec533_analyzer_cost"
  "sec533_analyzer_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec533_analyzer_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
