# Empty compiler generated dependencies file for sec533_analyzer_cost.
# This may be replaced when dependencies are built.
