# Empty dependencies file for baseline_pca_comparison.
# This may be replaced when dependencies are built.
