file(REMOVE_RECURSE
  "CMakeFiles/baseline_pca_comparison.dir/baseline_pca_comparison.cpp.o"
  "CMakeFiles/baseline_pca_comparison.dir/baseline_pca_comparison.cpp.o.d"
  "baseline_pca_comparison"
  "baseline_pca_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_pca_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
