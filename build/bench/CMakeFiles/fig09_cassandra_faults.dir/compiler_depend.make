# Empty compiler generated dependencies file for fig09_cassandra_faults.
# This may be replaced when dependencies are built.
