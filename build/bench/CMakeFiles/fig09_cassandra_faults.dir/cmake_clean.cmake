file(REMOVE_RECURSE
  "CMakeFiles/fig09_cassandra_faults.dir/fig09_cassandra_faults.cpp.o"
  "CMakeFiles/fig09_cassandra_faults.dir/fig09_cassandra_faults.cpp.o.d"
  "fig09_cassandra_faults"
  "fig09_cassandra_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_cassandra_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
