# Empty compiler generated dependencies file for fig06_signature_distribution.
# This may be replaced when dependencies are built.
