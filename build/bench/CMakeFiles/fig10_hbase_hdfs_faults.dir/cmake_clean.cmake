file(REMOVE_RECURSE
  "CMakeFiles/fig10_hbase_hdfs_faults.dir/fig10_hbase_hdfs_faults.cpp.o"
  "CMakeFiles/fig10_hbase_hdfs_faults.dir/fig10_hbase_hdfs_faults.cpp.o.d"
  "fig10_hbase_hdfs_faults"
  "fig10_hbase_hdfs_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_hbase_hdfs_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
