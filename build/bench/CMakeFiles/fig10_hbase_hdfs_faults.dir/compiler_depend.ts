# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig10_hbase_hdfs_faults.
