# Empty dependencies file for fig10_hbase_hdfs_faults.
# This may be replaced when dependencies are built.
