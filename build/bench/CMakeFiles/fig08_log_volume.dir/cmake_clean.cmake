file(REMOVE_RECURSE
  "CMakeFiles/fig08_log_volume.dir/fig08_log_volume.cpp.o"
  "CMakeFiles/fig08_log_volume.dir/fig08_log_volume.cpp.o.d"
  "fig08_log_volume"
  "fig08_log_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_log_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
