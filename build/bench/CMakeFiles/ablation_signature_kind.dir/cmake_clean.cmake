file(REMOVE_RECURSE
  "CMakeFiles/ablation_signature_kind.dir/ablation_signature_kind.cpp.o"
  "CMakeFiles/ablation_signature_kind.dir/ablation_signature_kind.cpp.o.d"
  "ablation_signature_kind"
  "ablation_signature_kind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_signature_kind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
