
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_signature_kind.cpp" "bench/CMakeFiles/ablation_signature_kind.dir/ablation_signature_kind.cpp.o" "gcc" "bench/CMakeFiles/ablation_signature_kind.dir/ablation_signature_kind.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/saad_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/systems/CMakeFiles/saad_systems.dir/DependInfo.cmake"
  "/root/repo/build/src/lsm/CMakeFiles/saad_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/saad_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/saad_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/saad_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/saad_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/saad_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/saad_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/saad_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
