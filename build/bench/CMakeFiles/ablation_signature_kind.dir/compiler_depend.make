# Empty compiler generated dependencies file for ablation_signature_kind.
# This may be replaced when dependencies are built.
