# Empty dependencies file for ablation_tests.
# This may be replaced when dependencies are built.
