file(REMOVE_RECURSE
  "CMakeFiles/ablation_tests.dir/ablation_tests.cpp.o"
  "CMakeFiles/ablation_tests.dir/ablation_tests.cpp.o.d"
  "ablation_tests"
  "ablation_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
