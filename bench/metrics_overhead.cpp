// Hot-path cost of the self-telemetry plane (obs/metrics.h), measured
// directly: ns per operation for Counter::inc() and Histogram::observe()
// against the cheapest thing they could possibly replace (a plain local
// counter) and the naive alternative they were designed to beat (a single
// shared std::atomic hammered by every thread).
//
// Two regimes:
//   1 thread    — the intrinsic cost of the relaxed add + cell indexing
//   N threads   — contention: the per-thread sharded cells should stay near
//                 the 1-thread cost while the single shared atomic collapses
//                 under cache-line ping-pong
//
// Run from a default build and from -DSAAD_METRICS=OFF (where inc/observe
// compile to empty inline functions) to see the escape hatch's floor.
//
//   metrics_overhead [--ops=N] [--threads=N] [--repeats=N]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/table.h"
#include "harness.h"
#include "obs/metrics.h"

namespace {

using namespace saad;

/// Keeps `value` alive as far as the optimizer is concerned, so a benchmark
/// loop over a plain variable is not folded to a single add.
template <typename T>
inline void keep(T& value) {
  asm volatile("" : "+r,m"(value) : : "memory");
}

/// Runs `op(i)` ops times on each of `threads` threads; returns ns/op
/// (wall time of the slowest thread over its op count).
template <typename Op>
double time_ns_per_op(std::size_t ops, std::size_t threads, Op op) {
  std::atomic<std::size_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<double> ns(threads, 0.0);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
      }
      const auto begin = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < ops; ++i) op(i);
      ns[t] = std::chrono::duration<double, std::nano>(
                  std::chrono::steady_clock::now() - begin)
                  .count() /
              static_cast<double>(ops);
    });
  }
  while (ready.load() != threads) {
  }
  go.store(true, std::memory_order_release);
  for (auto& thread : pool) thread.join();
  double worst = 0.0;
  for (double v : ns) worst = std::max(worst, v);
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const std::size_t ops =
      static_cast<std::size_t>(flags.get_int("ops", 20'000'000));
  const std::size_t threads = static_cast<std::size_t>(flags.get_int(
      "threads",
      std::max<std::int64_t>(std::thread::hardware_concurrency(), 2)));
  const int repeats = static_cast<int>(flags.get_int("repeats", 3));

  std::printf("=== Metrics hot-path overhead (SAAD_METRICS=%s) ===\n\n",
              obs::kMetricsEnabled ? "ON" : "OFF");
  std::printf("%zu ops/thread, contended runs use %zu threads, best of %d\n\n",
              ops, threads, repeats);

  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("saad_bench_ops_total", "bench");
  obs::Histogram& histogram = registry.histogram(
      "saad_bench_latency_us", "bench", obs::latency_bounds_us());
  std::atomic<std::uint64_t> shared{0};

  struct Case {
    const char* name;
    std::size_t threads;
    double ns;
  };
  std::vector<Case> cases = {
      {"plain local uint64 ++", 1, 0},
      {"shared atomic fetch_add", 1, 0},
      {"Counter::inc()", 1, 0},
      {"Histogram::observe()", 1, 0},
      {"shared atomic fetch_add", threads, 0},
      {"Counter::inc()", threads, 0},
      {"Histogram::observe()", threads, 0},
  };

  auto run_case = [&](Case& c) {
    double best = 0.0;
    for (int r = 0; r < repeats; ++r) {
      double ns = 0.0;
      if (std::string(c.name) == "plain local uint64 ++") {
        ns = time_ns_per_op(ops, c.threads, [](std::size_t) {
          static thread_local std::uint64_t local = 0;
          ++local;
          keep(local);
        });
      } else if (std::string(c.name) == "shared atomic fetch_add") {
        ns = time_ns_per_op(ops, c.threads, [&](std::size_t) {
          shared.fetch_add(1, std::memory_order_relaxed);
        });
      } else if (std::string(c.name) == "Counter::inc()") {
        ns = time_ns_per_op(ops, c.threads,
                            [&](std::size_t) { counter.inc(); });
      } else {
        ns = time_ns_per_op(ops, c.threads, [&](std::size_t i) {
          histogram.observe(static_cast<std::int64_t>(50 + (i & 0xFFFF)));
        });
      }
      if (best == 0.0 || ns < best) best = ns;
    }
    c.ns = best;
  };
  for (auto& c : cases) run_case(c);

  TextTable table({"operation", "threads", "ns/op"});
  for (const auto& c : cases) {
    table.add_row({c.name, TextTable::num(static_cast<std::int64_t>(c.threads)),
                   TextTable::num(c.ns, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());

  if (obs::kMetricsEnabled) {
    std::printf("sanity: counter=%llu histogram_count=%llu\n",
                static_cast<unsigned long long>(counter.value()),
                static_cast<unsigned long long>(histogram.snapshot().count));
  } else {
    std::printf("sanity: increments compiled out (counter=%llu)\n",
                static_cast<unsigned long long>(counter.value()));
  }
  std::printf(
      "\n(the sharded Counter should track the uncontended atomic at 1 "
      "thread and hold roughly flat at %zu threads, where the single shared "
      "atomic degrades with cache-line ping-pong)\n",
      threads);
  return 0;
}
