// Figure 8 — SAAD's reduction in monitoring-data volume.
//
// Paper: DEBUG-level log text vs task synopses over the same run:
//   HDFS 1457 MB vs 1.8 MB, HBase 928 MB vs 1.0 MB, Cassandra 1431 MB vs
//   136.7 MB — "the volume of task synopses is 15 to 900 times less".
//
// This bench runs each simulated system with DEBUG-level logging *rendered*
// (the conventional-analytics configuration) while SAAD simultaneously
// streams synopses, then compares bytes. Absolute megabytes differ from the
// paper's testbed; the shape to check is the 1-3 orders-of-magnitude gap.
#include <cstdio>

#include "common/table.h"
#include "harness.h"

namespace saad::bench {
namespace {

struct VolumeRow {
  const char* name;
  double log_mb;
  double synopsis_mb;
};

double mb(std::uint64_t bytes) { return static_cast<double>(bytes) / 1e6; }

}  // namespace
}  // namespace saad::bench

int main(int argc, char** argv) {
  using namespace saad;
  using namespace saad::bench;
  Flags flags(argc, argv);
  const auto run_min = flags.get_int("minutes", 10);

  std::printf("=== Figure 8: DEBUG log volume vs synopsis volume "
              "(%lld virtual minutes) ===\n\n",
              static_cast<long long>(run_min));

  std::vector<VolumeRow> rows;

  {
    // HBase-on-HDFS world with DEBUG text rendered; per-system byte counters.
    HBaseWorld world(/*seed=*/1, core::Level::kDebug);
    world.hbase->preload(20000, 100);
    world.hdfs->start();
    world.hbase->start();
    world.monitor->start_training();  // capture synopses (volume only)
    world.ycsb->start(minutes(run_min));
    world.engine.run_until(minutes(run_min));
    world.monitor->poll(world.engine.now());

    // Split the shared synopsis stream by stage owner: DataNode stages were
    // registered by MiniHdfs, Regionserver stages by MiniHBase.
    std::uint64_t hdfs_syn = 0, hbase_syn = 0;
    for (const auto& s : world.monitor->training_trace()) {
      std::vector<std::uint8_t> buf;
      const auto size = core::encode_synopsis(s, buf);
      const bool is_hdfs =
          s.stage <= world.hdfs->stages().data_transfer;  // first block of ids
      (is_hdfs ? hdfs_syn : hbase_syn) += size;
    }
    rows.push_back({"HDFS", mb(world.hdfs_sinks.counting.total_bytes()),
                    mb(hdfs_syn)});
    rows.push_back({"HBase", mb(world.hbase_sinks.counting.total_bytes()),
                    mb(hbase_syn)});
  }

  {
    CassandraWorld world(/*seed=*/1, core::Level::kDebug);
    world.cassandra->preload(20000, 100);
    world.cassandra->start();
    world.monitor->start_training();
    world.ycsb->start(minutes(run_min));
    world.engine.run_until(minutes(run_min));
    world.monitor->poll(world.engine.now());
    rows.push_back({"Cassandra", mb(world.sinks.counting.total_bytes()),
                    mb(world.monitor->channel().encoded_bytes())});
  }

  TextTable table({"System", "DEBUG log MB", "Synopses MB", "Reduction x",
                   "Paper reduction x"});
  const char* paper[] = {"810x", "928x", "10.5x"};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    table.add_row({r.name, TextTable::num(r.log_mb, 1),
                   TextTable::num(r.synopsis_mb, 2),
                   TextTable::num(r.log_mb / r.synopsis_mb, 0), paper[i]});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Shape check: synopses are orders of magnitude smaller than "
              "DEBUG text\n(paper range: 15x to ~900x depending on the "
              "system's log-point density).\n");
  return 0;
}
