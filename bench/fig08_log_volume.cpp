// Figure 8 — SAAD's reduction in monitoring-data volume.
//
// Paper: DEBUG-level log text vs task synopses over the same run:
//   HDFS 1457 MB vs 1.8 MB, HBase 928 MB vs 1.0 MB, Cassandra 1431 MB vs
//   136.7 MB — "the volume of task synopses is 15 to 900 times less".
//
// This bench runs each simulated system with DEBUG-level logging *rendered*
// (the conventional-analytics configuration) while SAAD simultaneously
// streams synopses, then compares bytes. Synopsis volume is measured as the
// exact on-disk size of the framed v2 trace (TraceWriter), so block headers
// and checksums are part of the accounting. Absolute megabytes differ from
// the paper's testbed; the shape to check is the 1-3 orders-of-magnitude
// gap.
#include <cstdio>
#include <filesystem>

#include "common/table.h"
#include "core/trace_io.h"
#include "harness.h"

namespace saad::bench {
namespace {

struct VolumeRow {
  const char* name;
  double log_mb;
  double synopsis_mb;
};

double mb(std::uint64_t bytes) { return static_cast<double>(bytes) / 1e6; }

}  // namespace
}  // namespace saad::bench

int main(int argc, char** argv) {
  using namespace saad;
  using namespace saad::bench;
  Flags flags(argc, argv);
  const auto run_min = flags.get_int("minutes", 10);

  std::printf("=== Figure 8: DEBUG log volume vs synopsis volume "
              "(%lld virtual minutes) ===\n\n",
              static_cast<long long>(run_min));

  std::vector<VolumeRow> rows;

  {
    // HBase-on-HDFS world with DEBUG text rendered; per-system byte counters.
    HBaseWorld world(/*seed=*/1, core::Level::kDebug);
    world.hbase->preload(20000, 100);
    world.hdfs->start();
    world.hbase->start();
    world.monitor->start_training();  // capture synopses (volume only)
    world.ycsb->start(minutes(run_min));
    world.engine.run_until(minutes(run_min));
    world.monitor->poll(world.engine.now());

    // Split the shared synopsis stream by stage owner: DataNode stages were
    // registered by MiniHdfs, Regionserver stages by MiniHBase. Each half
    // streams through its own v2 writer so the reported volume is the real
    // stored-trace size, framing included.
    const auto tmp = std::filesystem::temp_directory_path();
    const auto hdfs_path = (tmp / "fig08_hdfs.trc").string();
    const auto hbase_path = (tmp / "fig08_hbase.trc").string();
    {
      core::TraceWriter hdfs_w(hdfs_path);
      core::TraceWriter hbase_w(hbase_path);
      for (const auto& s : world.monitor->training_trace()) {
        const bool is_hdfs =
            s.stage <= world.hdfs->stages().data_transfer;  // first id block
        (is_hdfs ? hdfs_w : hbase_w).append(s);
      }
      hdfs_w.finalize();
      hbase_w.finalize();
      rows.push_back({"HDFS", mb(world.hdfs_sinks.counting.total_bytes()),
                      mb(hdfs_w.bytes_written())});
      rows.push_back({"HBase", mb(world.hbase_sinks.counting.total_bytes()),
                      mb(hbase_w.bytes_written())});
    }
    std::filesystem::remove(hdfs_path);
    std::filesystem::remove(hbase_path);
  }

  {
    CassandraWorld world(/*seed=*/1, core::Level::kDebug);
    world.cassandra->preload(20000, 100);
    world.cassandra->start();
    world.monitor->start_training();
    world.ycsb->start(minutes(run_min));
    world.engine.run_until(minutes(run_min));
    world.monitor->poll(world.engine.now());
    const auto cass_path =
        (std::filesystem::temp_directory_path() / "fig08_cassandra.trc")
            .string();
    core::TraceWriter cass_w(cass_path);
    for (const auto& s : world.monitor->training_trace()) cass_w.append(s);
    cass_w.finalize();
    rows.push_back({"Cassandra", mb(world.sinks.counting.total_bytes()),
                    mb(cass_w.bytes_written())});
    std::filesystem::remove(cass_path);
  }

  TextTable table({"System", "DEBUG log MB", "Synopses MB", "Reduction x",
                   "Paper reduction x"});
  const char* paper[] = {"810x", "928x", "10.5x"};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    table.add_row({r.name, TextTable::num(r.log_mb, 1),
                   TextTable::num(r.synopsis_mb, 2),
                   TextTable::num(r.log_mb / r.synopsis_mb, 0), paper[i]});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Shape check: synopses are orders of magnitude smaller than "
              "DEBUG text\n(paper range: 15x to ~900x depending on the "
              "system's log-point density).\n");
  return 0;
}
