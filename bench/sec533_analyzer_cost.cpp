// §5.3.3 — Statistical-analyzer cost vs conventional text mining.
//
// Paper: reverse-matching one hour of Cassandra DEBUG logs (11.9 M messages,
// ~1.6 GB) with regular expressions took ~12 minutes on a dedicated 8-core
// cluster; SAAD processes the same workload's synopses in real time on one
// core (up to 1500 synopses/s observed), and builds its model in ~60 s per
// host from 5.5 M synopses.
//
// This bench generates a Cassandra DEBUG corpus and the matching synopsis
// stream from the same virtual run, then measures real wall-clock cost of
//   (1) the regex reverse-matching baseline over the rendered lines, and
//   (2) SAAD's model construction + streaming detection over the synopses.
// The mining corpus is capped (std::regex is slow — which is the point) and
// extrapolated; the shape to verify is the orders-of-magnitude gap.
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "baseline/text_miner.h"
#include "core/trace_io.h"
#include "harness.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point begin) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       begin)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace saad;
  using namespace saad::bench;
  Flags flags(argc, argv);
  const UsTime corpus_min = minutes(flags.get_int("minutes", 2));
  const std::size_t mine_cap =
      static_cast<std::size_t>(flags.get_int("mine-lines", 20000));

  std::printf("=== §5.3.3: analyzer cost — regex text mining vs SAAD "
              "===\n\n");

  // Generate the corpus: Cassandra at DEBUG with a memory sink capturing the
  // rendered lines, while the monitor captures the synopsis stream.
  core::MemorySink memory;
  sim::Engine engine;
  core::LogRegistry registry;
  faults::FaultPlane plane;
  core::Monitor monitor(&registry, &engine.clock());
  baseline::RenderingSink render(&registry, &engine.clock(), &memory);
  systems::MiniCassandra cassandra(&engine, &registry, &monitor, &render,
                                   core::Level::kDebug, &plane,
                                   systems::CassandraOptions{}, 7);
  workload::YcsbOptions wl;
  wl.clients = 8;
  wl.think_mean = ms(10);
  wl.read_proportion = 0.2;
  wl.key_space = 20000;
  workload::YcsbDriver ycsb(&engine, &cassandra, wl, 99);
  cassandra.preload(20000, 100);
  cassandra.start();
  monitor.start_training();
  ycsb.start(corpus_min);
  engine.run_until(corpus_min);
  monitor.poll(engine.now());

  std::vector<std::string> lines;
  lines.reserve(memory.lines().size());
  for (const auto& l : memory.lines()) lines.push_back(l.text);
  const auto& synopses = monitor.training_trace();
  std::printf("corpus: %zu DEBUG log lines (%.1f MB) and %zu synopses from "
              "%lld virtual minutes\n\n",
              lines.size(), static_cast<double>(memory.total_bytes()) / 1e6,
              synopses.size(),
              static_cast<long long>(corpus_min / kUsPerMin));

  // ---- Baseline: regex reverse matching ---------------------------------
  baseline::TextMiner miner(registry);
  const std::size_t mined = std::min(mine_cap, lines.size());
  std::vector<std::string> sample(lines.begin(),
                                  lines.begin() + static_cast<long>(mined));
  auto begin = std::chrono::steady_clock::now();
  const auto counts = miner.mine(sample);
  const double mine_sec = seconds_since(begin);
  const double lines_per_sec = static_cast<double>(mined) / mine_sec;
  std::uint64_t matched = 0;
  for (std::size_t i = 0; i + 1 < counts.size(); ++i) matched += counts[i];
  std::printf("text mining: %zu lines in %.2f s -> %.0f lines/s on one core "
              "(%.1f%% matched to a template)\n",
              mined, mine_sec, lines_per_sec,
              100.0 * static_cast<double>(matched) /
                  static_cast<double>(mined));
  const double paper_corpus = 11.9e6;
  std::printf("  extrapolated to the paper's 11.9 M-line hour: %.0f "
              "core-minutes (paper: ~96 core-minutes on 8 cores)\n\n",
              paper_corpus / lines_per_sec / 60.0);

  // ---- SAAD: model construction + streaming detection --------------------
  begin = std::chrono::steady_clock::now();
  const core::OutlierModel model = core::OutlierModel::train(synopses);
  const double train_sec = seconds_since(begin);
  std::printf("SAAD model construction: %zu synopses in %.3f s (%.0f "
              "synopses/s; paper: 5.5 M in ~60 s)\n",
              synopses.size(), train_sec,
              static_cast<double>(synopses.size()) / train_sec);

  core::AnomalyDetector detector(&model);
  begin = std::chrono::steady_clock::now();
  for (const auto& s : synopses) detector.ingest(s);
  (void)detector.finish();
  const double detect_sec = seconds_since(begin);
  const double syn_per_sec = static_cast<double>(synopses.size()) / detect_sec;
  std::printf("SAAD streaming detection: %zu synopses in %.3f s -> %.0f "
              "synopses/s on one core (paper observed up to 1500/s live)\n",
              synopses.size(), detect_sec, syn_per_sec);

  // Same detection fed from a stored framed trace (v2): disk -> block ->
  // detector, the deploy-offline configuration. Byte accounting is the real
  // file, checksummed framing included.
  const auto trace_path =
      (std::filesystem::temp_directory_path() / "sec533_synopses.trc")
          .string();
  {
    core::TraceWriter writer(trace_path);
    for (const auto& s : synopses) writer.append(s);
    writer.finalize();
  }
  const auto trace_bytes = std::filesystem::file_size(trace_path);
  core::AnomalyDetector from_disk(&model);
  begin = std::chrono::steady_clock::now();
  core::TraceReader trace_reader(trace_path);
  core::Synopsis record;
  std::size_t streamed = 0;
  while (trace_reader.next(record)) {
    from_disk.ingest(record);
    ++streamed;
  }
  (void)from_disk.finish();
  const double disk_sec = seconds_since(begin);
  std::printf("  from a stored %.2f MB framed trace: %zu synopses in %.3f s "
              "-> %.0f synopses/s incl. decode + CRC32C\n\n",
              static_cast<double>(trace_bytes) / 1e6, streamed, disk_sec,
              static_cast<double>(streamed) / disk_sec);
  std::filesystem::remove(trace_path);

  // ---- Comparison ----------------------------------------------------------
  // Per unit of monitored work: one task produces ~3 log lines but only one
  // synopsis; normalize to tasks.
  const double lines_per_task = static_cast<double>(lines.size()) /
                                static_cast<double>(synopses.size());
  const double mining_us_per_task = 1e6 * lines_per_task / lines_per_sec;
  const double saad_us_per_task = 1e6 / syn_per_sec;
  std::printf("cost per monitored task: text mining %.1f us vs SAAD %.2f us "
              "-> %.0fx cheaper\n",
              mining_us_per_task, saad_us_per_task,
              mining_us_per_task / saad_us_per_task);
  std::printf("\nShape check: SAAD's streaming analysis is orders of "
              "magnitude cheaper than regex\nreverse-matching, reproducing "
              "the paper's '8-core offline job vs one-core real-time'\n"
              "comparison.\n");
  return 0;
}
