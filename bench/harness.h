// Shared experiment harness for the per-figure benchmark binaries.
//
// Each bench builds a "world" (simulated cluster + YCSB + SAAD monitor),
// warms it to steady state, trains on a fault-free span, arms the detector,
// runs the experiment timeline, and prints the paper's rows/series.
//
// Every world is fully deterministic for a given seed: running a bench twice
// produces byte-identical output.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baseline/error_monitor.h"
#include "baseline/log_renderer.h"
#include "core/report.h"
#include "core/saad.h"
#include "systems/cassandra/cassandra.h"
#include "systems/hbase/hbase.h"
#include "workload/ycsb.h"

namespace saad::bench {

/// Tiny --key=value flag reader for bench binaries.
class Flags {
 public:
  Flags(int argc, char** argv);

  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

/// What the logger writes and who counts it.
struct SinkStack {
  core::CountingSink counting;                      // byte/message totals
  std::unique_ptr<baseline::RenderingSink> render;  // full log-file lines
  std::unique_ptr<baseline::ErrorLogMonitor> errors;
  core::LogSink* head = nullptr;  // what the Logger writes into
};

/// 4-node MiniCassandra world (paper §5.4 testbed).
struct CassandraWorld {
  sim::Engine engine;
  core::LogRegistry registry;
  faults::FaultPlane plane;
  std::unique_ptr<core::Monitor> monitor;
  SinkStack sinks;
  std::unique_ptr<systems::MiniCassandra> cassandra;
  std::unique_ptr<workload::YcsbDriver> ycsb;

  /// `log_threshold` controls rendered text (SAAD runs at INFO; the volume
  /// study uses DEBUG). Workload: 8 closed-loop clients, write-heavy.
  explicit CassandraWorld(std::uint64_t seed,
                          core::Level log_threshold = core::Level::kInfo,
                          bool with_monitor = true);

  /// preload + start + warmup + train + arm. Timeline origin stays at 0.
  void warm_train_arm(UsTime warmup = minutes(2), UsTime train = minutes(6));

  std::vector<core::Anomaly> run_collect(UsTime until);
};

/// 4-host MiniHBase-on-MiniHdfs world (paper §5.5 testbed).
struct HBaseWorld {
  sim::Engine engine;
  core::LogRegistry registry;
  faults::FaultPlane plane;
  std::unique_ptr<core::Monitor> monitor;
  SinkStack hdfs_sinks;   // DataNode log volume, counted separately
  SinkStack hbase_sinks;  // Regionserver log volume
  std::unique_ptr<systems::MiniHdfs> hdfs;
  std::unique_ptr<systems::MiniHBase> hbase;
  std::unique_ptr<workload::YcsbDriver> ycsb;

  explicit HBaseWorld(std::uint64_t seed,
                      core::Level log_threshold = core::Level::kInfo,
                      bool with_monitor = true, int put_batch_size = 1);

  void warm_train_arm(UsTime warmup = minutes(2), UsTime train = minutes(6));

  std::vector<core::Anomaly> run_collect(UsTime until);
};

/// Prints an anomaly timeline chart plus per-anomaly lines.
void print_anomalies(const std::string& title,
                     const std::vector<core::Anomaly>& anomalies,
                     const core::LogRegistry& registry,
                     std::size_t num_windows, std::size_t max_lines = 40);

/// Per-10s throughput series rendered as a compact sparkline row.
void print_throughput(const workload::YcsbDriver& ycsb, UsTime until);

}  // namespace saad::bench
