// Figure 6 — Distribution of signatures.
//
// Paper: "Most of the tasks follow a few execution paths. In HDFS Data Node,
// 6 out of 29, in HBase, 12 out of 72, and in Cassandra 10 out of 68
// signatures account for 95% of all tasks."
//
// This bench trains each simulated system on a fault-free trace, ranks
// signatures by task share (pooled over the system's stages, as in the
// paper's figure), and reports how many signatures cover 95% of tasks.
// The expectation is the *shape*: a small head covers nearly everything.
#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "harness.h"

namespace saad::bench {
namespace {

struct Distribution {
  std::size_t total_signatures = 0;
  std::size_t covering_95 = 0;
  std::uint64_t total_tasks = 0;
  std::vector<double> shares;  // descending
};

Distribution distribution_of(const std::vector<core::Synopsis>& trace,
                             const std::set<core::StageId>& stages) {
  std::map<std::pair<core::StageId, core::Signature>, std::uint64_t> counts;
  std::uint64_t total = 0;
  for (const auto& s : trace) {
    if (!stages.contains(s.stage)) continue;
    counts[{s.stage, core::Signature::from(s)}]++;
    total++;
  }
  Distribution d;
  d.total_tasks = total;
  d.total_signatures = counts.size();
  for (const auto& [key, c] : counts)
    d.shares.push_back(static_cast<double>(c) / static_cast<double>(total));
  std::sort(d.shares.rbegin(), d.shares.rend());
  double cum = 0.0;
  for (double share : d.shares) {
    cum += share;
    d.covering_95++;
    if (cum >= 0.95) break;
  }
  return d;
}

void report(const char* name, const Distribution& d, const char* paper) {
  std::printf("%s: %zu of %zu signatures cover 95%% of %llu tasks "
              "(paper: %s)\n",
              name, d.covering_95, d.total_signatures,
              static_cast<unsigned long long>(d.total_tasks), paper);
  std::printf("  top shares:");
  for (std::size_t i = 0; i < std::min<std::size_t>(d.shares.size(), 10); ++i)
    std::printf(" %.3f", d.shares[i]);
  std::printf("\n  tail shares (rarest):");
  const std::size_t n = d.shares.size();
  for (std::size_t i = n - std::min<std::size_t>(n, 5); i < n; ++i)
    std::printf(" %.2e", d.shares[i]);
  std::printf("\n\n");
}

}  // namespace
}  // namespace saad::bench

int main(int argc, char** argv) {
  using namespace saad;
  using namespace saad::bench;
  Flags flags(argc, argv);
  const auto train_min = flags.get_int("train-min", 8);

  std::printf("=== Figure 6: distribution of signatures ===\n\n");

  {
    HBaseWorld world(/*seed=*/42);
    world.warm_train_arm(minutes(2), minutes(train_min));
    const auto& trace = world.monitor->training_trace();

    std::set<core::StageId> hdfs_stages = {
        world.hdfs->stages().data_xceiver, world.hdfs->stages().packet_responder,
        world.hdfs->stages().handler, world.hdfs->stages().listener,
        world.hdfs->stages().reader, world.hdfs->stages().recover_blocks,
        world.hdfs->stages().data_transfer};
    report("(a) HDFS Data Node", distribution_of(trace, hdfs_stages),
           "6 of 29");

    std::set<core::StageId> hbase_stages = {
        world.hbase->stages().call, world.hbase->stages().handler,
        world.hbase->stages().open_region, world.hbase->stages().post_open,
        world.hbase->stages().log_roller,
        world.hbase->stages().split_log_worker,
        world.hbase->stages().compaction_checker,
        world.hbase->stages().compaction_request,
        world.hbase->stages().data_streamer,
        world.hbase->stages().response_processor,
        world.hbase->stages().listener, world.hbase->stages().connection};
    report("(b) HBase Regionserver", distribution_of(trace, hbase_stages),
           "12 of 72");
  }

  {
    CassandraWorld world(/*seed=*/42);
    world.warm_train_arm(minutes(2), minutes(train_min));
    const auto& trace = world.monitor->training_trace();
    std::set<core::StageId> all;
    for (const auto& s : trace) all.insert(s.stage);
    report("(c) Cassandra", distribution_of(trace, all), "10 of 68");
  }

  std::printf("Shape check: in every system a small minority of signatures "
              "covers 95%% of tasks,\nmatching the paper's head-heavy "
              "distributions.\n");
  return 0;
}
