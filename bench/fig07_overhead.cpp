// Figure 7 + §5.3.1 — SAAD's runtime overhead on a real multithreaded
// staged server.
//
// Paper: normalized average throughput of HBase and Cassandra with SAAD
// (instrumented code + task execution tracker) vs the original system, both
// at INFO logging. Result: "SAAD imposes insignificant overhead".
//
// The statistical experiments in this reproduction run on virtual time, so
// they cannot measure tracker overhead. This bench therefore runs a real
// thread-pool staged server — worker threads pulling tasks from a shared
// queue, each task doing real CPU work and hitting several log points — and
// compares measured throughput with the tracker attached vs detached.
// It also reports the per-synopsis wire size (paper: ~48 bytes) and the
// tracker-side buffering (paper: a few kilobytes).
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/table.h"
#include "harness.h"

namespace saad::bench {
namespace {

struct WorkloadShape {
  const char* name;
  int log_points_per_task;  // tracepoints a task hits
  int work_per_task;        // hash iterations between log points
};

/// Runs the staged server for `duration_ms` and returns tasks/second.
double run_server(const WorkloadShape& shape, bool with_saad, int threads,
                  int duration_ms, std::uint64_t* synopsis_bytes,
                  std::uint64_t* synopses) {
  core::LogRegistry registry;
  const auto stage = registry.register_stage("Worker");
  std::vector<core::LogPointId> points;
  for (int i = 0; i < shape.log_points_per_task; ++i) {
    points.push_back(registry.register_log_point(
        stage, i == 0 ? core::Level::kInfo : core::Level::kDebug,
        "worker step %"));
  }

  RealClock clock;
  core::Monitor monitor(&registry, &clock);
  core::NullSink sink;
  core::Logger logger(&registry, &sink, core::Level::kInfo);
  if (with_saad) logger.set_tracker(&monitor.tracker(0));
  monitor.start_training();  // just capture synopses

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> completed{0};

  auto worker = [&] {
    // Real CPU work: FNV hashing; volatile sink defeats the optimizer.
    std::uint64_t h = 1469598103934665603ull;
    while (!stop.load(std::memory_order_relaxed)) {
      if (with_saad) monitor.tracker(0).set_context(stage);
      for (const auto p : points) {
        for (int w = 0; w < shape.work_per_task; ++w) {
          h ^= w;
          h *= 1099511628211ull;
        }
        logger.log(p);  // INFO threshold: DEBUG text never rendered
      }
      if (with_saad) monitor.tracker(0).end_context();
      completed.fetch_add(1, std::memory_order_relaxed);
    }
    volatile std::uint64_t keep = h;
    (void)keep;
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  const UsTime begin = clock.now();
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true);
  for (auto& t : pool) t.join();
  const double elapsed_sec = to_sec(clock.now() - begin);

  if (synopsis_bytes != nullptr) {
    *synopsis_bytes = monitor.channel().encoded_bytes();
    *synopses = monitor.channel().pushed();
  }
  return static_cast<double>(completed.load()) / elapsed_sec;
}

}  // namespace
}  // namespace saad::bench

int main(int argc, char** argv) {
  using namespace saad;
  using namespace saad::bench;
  Flags flags(argc, argv);
  const int threads = static_cast<int>(flags.get_int("threads", 8));
  const int reps = static_cast<int>(flags.get_int("reps", 5));
  const int duration_ms = static_cast<int>(flags.get_int("ms", 300));

  std::printf("=== Figure 7: SAAD overhead on a real %d-thread staged server "
              "===\n\n",
              threads);

  const WorkloadShape shapes[] = {
      // HBase-ish tasks: fewer, heavier; Cassandra-ish: many small tasks;
      // plus a microtask stress row far beyond real per-node task rates —
      // the tracker's worst case.
      {"HBase-like (heavy tasks)", 6, 4000},
      {"Cassandra-like (small tasks)", 4, 1500},
      {"microtask stress (worst case)", 4, 500},
  };

  TextTable table({"Workload", "original op/s", "with SAAD op/s",
                   "normalized", "paper"});
  std::uint64_t synopsis_bytes = 0, synopses = 0;

  for (const auto& shape : shapes) {
    double base = 0, tracked = 0;
    for (int r = 0; r < reps; ++r) {
      base += run_server(shape, false, threads, duration_ms, nullptr, nullptr);
      tracked += run_server(shape, true, threads, duration_ms,
                            &synopsis_bytes, &synopses);
    }
    base /= reps;
    tracked /= reps;
    table.add_row({shape.name, TextTable::num(base, 0),
                   TextTable::num(tracked, 0),
                   TextTable::num(tracked / base, 3),
                   shape.work_per_task >= 1000 ? "~0.99" : "n/a"});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("memory overhead (§5.3.1): %llu synopses, %.1f bytes each on "
              "the wire (paper: ~48 B average);\ntracker state is one small "
              "task context per live thread (a few KB total).\n",
              static_cast<unsigned long long>(synopses),
              synopses ? static_cast<double>(synopsis_bytes) /
                             static_cast<double>(synopses)
                       : 0.0);
  std::printf("\nShape check: normalized throughput with SAAD stays within a "
              "few percent of the\noriginal server, matching the paper's "
              "'practically zero overhead' claim.\n");
  return 0;
}
