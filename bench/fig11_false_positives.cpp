// Figure 11 (a, b) + Table 3 — Empirical false-positive analysis.
//
// Paper protocol (§5.6): for each of 7 fault types on the Cassandra write
// path (Table 3), run repeated controlled experiments: a fault-free "before"
// phase, then the fault. Compare the average number of detected flow /
// performance anomalies before vs during the fault.
//
// Paper findings to reproduce in shape:
//  * error faults raise flow anomalies by an order of magnitude (10-60x);
//  * delay-WAL-high and delay-MemTable-low raise performance anomalies
//    (3-8x);
//  * anomalies before the fault (false positives) are rare.
//
// Scaled by default to 3 runs x 8-minute phases (the paper uses 10 runs x
// 30 minutes); use --runs / --phase-min for the full-scale version.
#include <cstdio>

#include "common/table.h"
#include "harness.h"

namespace saad::bench {
namespace {

struct FaultCase {
  const char* name;
  faults::Activity activity;
  faults::FaultMode mode;
  double intensity;
};

// Table 3: 7 faults on the write path of one Cassandra node.
constexpr FaultCase kFaults[] = {
    {"error-WAL-low", faults::Activity::kWalAppend, faults::FaultMode::kError,
     0.01},
    {"error-WAL-high", faults::Activity::kWalAppend, faults::FaultMode::kError,
     1.0},
    {"error-MemTable-low", faults::Activity::kMemtableFlush,
     faults::FaultMode::kError, 0.01},
    {"error-MemTable-high", faults::Activity::kMemtableFlush,
     faults::FaultMode::kError, 1.0},
    {"delay-WAL-low", faults::Activity::kWalAppend, faults::FaultMode::kDelay,
     0.01},
    {"delay-WAL-high", faults::Activity::kWalAppend, faults::FaultMode::kDelay,
     1.0},
    {"delay-MemTable-low", faults::Activity::kMemtableFlush,
     faults::FaultMode::kDelay, 0.01},
};

struct PhaseCounts {
  double flow = 0, perf = 0;
};

}  // namespace
}  // namespace saad::bench

int main(int argc, char** argv) {
  using namespace saad;
  using namespace saad::bench;
  Flags flags(argc, argv);
  const int runs = static_cast<int>(flags.get_int("runs", 3));
  const UsTime phase = minutes(flags.get_int("phase-min", 8));

  std::printf("=== Figure 11: anomalies before vs during faults "
              "(%d runs x %lld-minute phases; paper: 10 x 30) ===\n\n",
              runs, static_cast<long long>(phase / kUsPerMin));

  TextTable table({"Fault (Table 3)", "flow before", "flow during",
                   "perf before", "perf during"});
  double total_fp_flow = 0, total_fp_perf = 0;
  double observed_minutes = 0;

  for (const auto& fault : kFaults) {
    PhaseCounts before, during;
    for (int run = 0; run < runs; ++run) {
      CassandraWorld world(static_cast<std::uint64_t>(1000 + run));
      world.warm_train_arm(minutes(2), minutes(6));
      const UsTime t0 = world.engine.now();

      // Fault-free "before" phase.
      const auto quiet = world.run_collect(t0 + phase);
      for (const auto& a : quiet) {
        auto& slot =
            (a.kind == core::AnomalyKind::kFlow) ? before.flow : before.perf;
        slot += 1.0;
      }

      // Fault phase on host 3.
      faults::FaultSpec spec;
      spec.host = 3;
      spec.activity = fault.activity;
      spec.mode = fault.mode;
      spec.intensity = fault.intensity;
      spec.delay = ms(100);
      spec.from = world.engine.now();
      spec.until = spec.from + phase;
      world.plane.add(spec);
      const auto faulty = world.run_collect(spec.until);
      for (const auto& a : faulty) {
        auto& slot =
            (a.kind == core::AnomalyKind::kFlow) ? during.flow : during.perf;
        slot += 1.0;
      }
      observed_minutes += to_min(phase);
    }
    before.flow /= runs;
    before.perf /= runs;
    during.flow /= runs;
    during.perf /= runs;
    total_fp_flow += before.flow * runs;
    total_fp_perf += before.perf * runs;

    table.add_row({fault.name, TextTable::num(before.flow, 1),
                   TextTable::num(during.flow, 1),
                   TextTable::num(before.perf, 1),
                   TextTable::num(during.perf, 1)});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("false positives (fault-free phases): %.0f flow + %.0f perf "
              "anomalies over %.0f observed minutes\n",
              total_fp_flow, total_fp_perf, observed_minutes);
  if (total_fp_flow > 0) {
    std::printf("  mean time between flow false positives: %.1f minutes "
                "(paper: 38 minutes)\n",
                observed_minutes / total_fp_flow);
  } else {
    std::printf("  no flow false positives observed (paper: one per ~38 "
                "minutes)\n");
  }
  if (total_fp_perf > 0) {
    std::printf("  mean time between perf false positives: %.1f minutes "
                "(paper: ~10 minutes)\n",
                observed_minutes / total_fp_perf);
  } else {
    std::printf("  no perf false positives observed (paper: one per ~10 "
                "minutes)\n");
  }
  std::printf("\nShape check (paper): error faults multiply FLOW anomalies "
              "10-60x; delay-WAL-high and\ndelay-MemTable-low multiply PERF "
              "anomalies 3-8x; the paper's delay-WAL-low shows no\nincrease "
              "(our reproduction is more sensitive: windows hold more tasks, "
              "so the t-test\nresolves the 1%% delayed writes — see "
              "EXPERIMENTS.md).\n");
  return 0;
}
