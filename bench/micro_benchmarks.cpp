// Google-benchmark microbenchmarks for the SAAD hot paths:
//  - tracker on_log (the per-log-statement cost, the Fig. 7 story),
//  - task begin/end + synopsis emission,
//  - synopsis encode/decode (wire path to the analyzer),
//  - model classification and detector ingest (analyzer per-task cost,
//    the §5.3.3 story),
//  - model training throughput.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/saad.h"

namespace {

using namespace saad;

core::Synopsis sample_synopsis(Rng& rng, core::StageId stage) {
  core::Synopsis s;
  s.stage = stage;
  s.uid = rng.next_u64() >> 1;
  s.start = static_cast<UsTime>(rng.next_below(minutes(10)));
  s.duration = static_cast<UsTime>(rng.lognormal_median(ms(10), 0.2));
  s.log_points = {{1, 1}, {2, static_cast<std::uint32_t>(1 + rng.next_below(30))},
                  {4, 1}, {5, 1}};
  if (rng.chance(0.01)) s.log_points.insert(s.log_points.begin() + 2, {3, 1});
  return s;
}

std::vector<core::Synopsis> sample_trace(std::size_t n) {
  Rng rng(1);
  std::vector<core::Synopsis> trace;
  trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i) trace.push_back(sample_synopsis(rng, 0));
  return trace;
}

void BM_TrackerOnLog(benchmark::State& state) {
  ManualClock clock;
  core::TaskExecutionTracker tracker(0, &clock, nullptr);
  auto task = tracker.begin_task(0);
  core::TaskBinding bind(tracker, task.get());
  core::LogPointId p = 0;
  for (auto _ : state) {
    tracker.on_log(p);
    p = (p + 1) % 8;  // a few distinct points, like a real task
    clock.advance(1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrackerOnLog);

void BM_TrackerTaskLifecycle(benchmark::State& state) {
  ManualClock clock;
  std::uint64_t emitted = 0;
  core::TaskExecutionTracker tracker(
      0, &clock, [&](const core::Synopsis&) { emitted++; });
  for (auto _ : state) {
    auto task = tracker.begin_task(0);
    for (core::LogPointId p = 0; p < 4; ++p) task->on_log(p, clock.now());
    tracker.end_task(std::move(task));
    clock.advance(100);
  }
  benchmark::DoNotOptimize(emitted);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrackerTaskLifecycle);

void BM_SynopsisEncode(benchmark::State& state) {
  Rng rng(2);
  const auto s = sample_synopsis(rng, 3);
  std::vector<std::uint8_t> buf;
  for (auto _ : state) {
    buf.clear();
    benchmark::DoNotOptimize(core::encode_synopsis(s, buf));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SynopsisEncode);

void BM_SynopsisDecode(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::uint8_t> buf;
  core::encode_synopsis(sample_synopsis(rng, 3), buf);
  for (auto _ : state) {
    std::span<const std::uint8_t> in(buf);
    core::Synopsis out;
    benchmark::DoNotOptimize(core::decode_synopsis(in, out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SynopsisDecode);

void BM_ModelTrain(benchmark::State& state) {
  const auto trace = sample_trace(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::OutlierModel::train(trace));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ModelTrain)->Arg(10000)->Arg(100000);

void BM_ModelClassify(benchmark::State& state) {
  const auto trace = sample_trace(50000);
  const auto model = core::OutlierModel::train(trace);
  Rng rng(4);
  const auto feature = core::make_feature(sample_synopsis(rng, 0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.classify(feature));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModelClassify);

void BM_DetectorIngest(benchmark::State& state) {
  const auto trace = sample_trace(50000);
  const auto model = core::OutlierModel::train(trace);
  core::AnomalyDetector detector(&model);
  Rng rng(5);
  std::size_t i = 0;
  for (auto _ : state) {
    detector.ingest(trace[i++ % trace.size()]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetectorIngest);

}  // namespace

BENCHMARK_MAIN();
