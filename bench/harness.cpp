#include "harness.h"

#include <algorithm>
#include <cstdio>

#include "core/incidents.h"

namespace saad::bench {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      kv_.emplace_back(arg, "");
    } else {
      kv_.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
    }
  }
}

std::int64_t Flags::get_int(const std::string& key,
                            std::int64_t fallback) const {
  for (const auto& [k, v] : kv_)
    if (k == key) return std::stoll(v);
  return fallback;
}

double Flags::get_double(const std::string& key, double fallback) const {
  for (const auto& [k, v] : kv_)
    if (k == key) return std::stod(v);
  return fallback;
}

bool Flags::has(const std::string& key) const {
  for (const auto& [k, v] : kv_)
    if (k == key) return true;
  return false;
}

std::string Flags::get(const std::string& key,
                       const std::string& fallback) const {
  for (const auto& [k, v] : kv_)
    if (k == key) return v;
  return fallback;
}

namespace {

void build_sink_stack(SinkStack& sinks, const core::LogRegistry* registry,
                      const Clock* clock) {
  // logger -> renderer (full lines) -> error monitor -> byte counter
  sinks.errors = std::make_unique<baseline::ErrorLogMonitor>(
      clock, &sinks.counting, core::Level::kError);
  sinks.render = std::make_unique<baseline::RenderingSink>(registry, clock,
                                                           sinks.errors.get());
  sinks.head = sinks.render.get();
}

}  // namespace

CassandraWorld::CassandraWorld(std::uint64_t seed, core::Level log_threshold,
                               bool with_monitor) {
  monitor = std::make_unique<core::Monitor>(&registry, &engine.clock());
  build_sink_stack(sinks, &registry, &engine.clock());
  systems::CassandraOptions options;
  cassandra = std::make_unique<systems::MiniCassandra>(
      &engine, &registry, with_monitor ? monitor.get() : nullptr, sinks.head,
      log_threshold, &plane, options, seed);
  workload::YcsbOptions wl;
  wl.clients = 8;
  wl.think_mean = ms(10);
  wl.read_proportion = 0.2;  // write-intensive, as in the paper
  wl.key_space = 20000;
  ycsb = std::make_unique<workload::YcsbDriver>(&engine, cassandra.get(), wl,
                                                seed ^ 0x9E3779B9);
}

void CassandraWorld::warm_train_arm(UsTime warmup, UsTime train) {
  cassandra->preload(20000, 100);
  cassandra->start();
  ycsb->start(minutes(24 * 60));  // clients never stop during a bench
  engine.run_until(warmup);
  monitor->start_training();
  engine.run_until(warmup + train);
  monitor->train({});
  monitor->arm();
}

std::vector<core::Anomaly> CassandraWorld::run_collect(UsTime until) {
  engine.run_until(until);
  return monitor->poll(engine.now());
}

HBaseWorld::HBaseWorld(std::uint64_t seed, core::Level log_threshold,
                       bool with_monitor, int put_batch_size) {
  monitor = std::make_unique<core::Monitor>(&registry, &engine.clock());
  build_sink_stack(hdfs_sinks, &registry, &engine.clock());
  build_sink_stack(hbase_sinks, &registry, &engine.clock());
  hdfs = std::make_unique<systems::MiniHdfs>(
      &engine, &registry, with_monitor ? monitor.get() : nullptr,
      hdfs_sinks.head, log_threshold, &plane, systems::HdfsOptions{}, seed);
  hbase = std::make_unique<systems::MiniHBase>(
      &engine, &registry, with_monitor ? monitor.get() : nullptr,
      hbase_sinks.head, log_threshold, &plane, hdfs.get(),
      systems::HBaseOptions{}, seed ^ 0xB5297A4D);
  workload::YcsbOptions wl;
  wl.clients = 8;
  wl.think_mean = ms(10);
  wl.read_proportion = 0.2;
  wl.key_space = 20000;
  wl.put_batch_size = put_batch_size;
  ycsb = std::make_unique<workload::YcsbDriver>(&engine, hbase.get(), wl,
                                                seed ^ 0x1B56C4E9);
}

void HBaseWorld::warm_train_arm(UsTime warmup, UsTime train) {
  hbase->preload(20000, 100);
  hdfs->start();
  hbase->start();
  ycsb->start(minutes(24 * 60));
  engine.run_until(warmup);
  monitor->start_training();
  engine.run_until(warmup + train);
  monitor->train({});
  monitor->arm();
}

std::vector<core::Anomaly> HBaseWorld::run_collect(UsTime until) {
  engine.run_until(until);
  return monitor->poll(engine.now());
}

void print_anomalies(const std::string& title,
                     const std::vector<core::Anomaly>& anomalies,
                     const core::LogRegistry& registry,
                     std::size_t num_windows, std::size_t max_lines) {
  const auto chart =
      core::anomaly_timeline(anomalies, registry, num_windows, title);
  std::printf("%s", chart.to_string().c_str());
  std::printf("  markers: F flow anomaly, N new-signature flow anomaly, "
              "P performance anomaly; columns are minutes\n\n");
  // Incident view: the bands a human reads off the chart.
  const auto incidents = core::group_incidents(anomalies);
  std::printf("incidents (%zu):\n", incidents.size());
  std::size_t shown = 0;
  for (const auto& incident : incidents) {
    if (shown++ >= max_lines) {
      std::printf("  ... %zu more incidents\n", incidents.size() - max_lines);
      break;
    }
    std::printf("  %s\n", core::describe(incident, registry).c_str());
  }
  std::printf("\n");
  shown = 0;
  for (const auto& a : anomalies) {
    if (shown++ >= max_lines) {
      std::printf("  ... %zu more anomalies\n",
                  anomalies.size() - max_lines);
      break;
    }
    std::printf("  %s\n", core::describe(a, registry).c_str());
  }
  std::printf("\n");
}

void print_throughput(const workload::YcsbDriver& ycsb, UsTime until) {
  const auto& ops = ycsb.stats().ops;
  double peak = 1.0;
  const auto windows =
      std::min<std::size_t>(ops.num_windows(),
                            static_cast<std::size_t>(until / sec(10)));
  for (std::size_t w = 0; w < windows; ++w)
    peak = std::max(peak, ops.rate_in(w));
  std::string spark;
  for (std::size_t w = 0; w < windows; ++w) {
    static const char* levels[] = {" ", ".", ":", "-", "=", "#"};
    const int idx = static_cast<int>(5.0 * ops.rate_in(w) / peak);
    spark += levels[std::clamp(idx, 0, 5)];
  }
  std::printf("throughput (op/s per 10 s, peak %.0f):\n  |%s|\n\n", peak,
              spark.c_str());
}

}  // namespace saad::bench
