// Baseline comparison — SAAD vs PCA subspace detection (Xu et al., SOSP'09).
//
// Both detectors consume the *same* synopsis stream from one deterministic
// Cassandra run with a WAL-error fault on one host. PCA sees per-window
// log-point count vectors (what console-log mining extracts); SAAD sees the
// per-task stage/signature/duration structure.
//
// The paper's positioning (§6): count-vector methods can flag that a window
// is anomalous, but "do not associate anomalies with the semantic of server
// code". This bench makes that concrete: detection windows are similar, but
// PCA's output is one bit per window while SAAD names the stage, the host,
// and the flow.
#include <cstdio>

#include "baseline/pca_detector.h"
#include "common/table.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace saad;
  using namespace saad::bench;
  Flags flags(argc, argv);
  const UsTime phase = minutes(flags.get_int("phase-min", 8));

  std::printf("=== Baseline comparison: SAAD vs PCA on the same synopsis "
              "stream ===\n\n");

  // One deterministic run: training span, quiet phase, fault phase.
  std::vector<core::Synopsis> training, quiet, faulty;
  std::size_t num_points = 0;
  {
    CassandraWorld world(/*seed=*/31);
    world.warm_train_arm(minutes(2), minutes(6));
    training = world.monitor->training_trace();
    num_points = world.registry.num_log_points();

    world.monitor->start_training();
    world.engine.run_until(world.engine.now() + phase);
    world.monitor->poll(world.engine.now());
    quiet = world.monitor->training_trace();

    faults::FaultSpec fault;
    fault.host = 3;
    fault.activity = faults::Activity::kWalAppend;
    fault.mode = faults::FaultMode::kError;
    fault.intensity = 1.0;
    fault.from = world.engine.now();
    fault.until = fault.from + phase;
    world.plane.add(fault);
    world.monitor->start_training();
    world.engine.run_until(fault.until);
    world.monitor->poll(world.engine.now());
    faulty = world.monitor->training_trace();
  }
  const UsTime window = kUsPerMin;
  std::printf("streams: %zu training / %zu quiet / %zu fault synopses, "
              "%zu log points, 1-minute windows\n\n",
              training.size(), quiet.size(), faulty.size(), num_points);

  // ---- PCA: per-window count vectors -------------------------------------
  const auto train_matrix =
      baseline::count_matrix(training, num_points, window);
  const auto pca = baseline::PcaDetector::train(train_matrix);
  auto pca_flags = [&](const std::vector<core::Synopsis>& trace) {
    const auto matrix = baseline::count_matrix(trace, num_points, window);
    std::size_t flagged = 0, windows = 0;
    for (const auto& row : matrix) {
      bool empty = true;
      for (double v : row) empty &= (v == 0.0);
      if (empty) continue;  // window offsets differ per phase
      windows++;
      if (pca.anomalous(row)) flagged++;
    }
    return std::make_pair(flagged, windows);
  };
  const auto [pca_quiet, quiet_windows] = pca_flags(quiet);
  const auto [pca_fault, fault_windows] = pca_flags(faulty);

  // ---- SAAD ------------------------------------------------------------------
  const auto model = core::OutlierModel::train(training);
  auto saad_run = [&](const std::vector<core::Synopsis>& trace) {
    core::AnomalyDetector detector(&model);
    for (const auto& s : trace) detector.ingest(s);
    return detector.finish();
  };
  const auto saad_quiet = saad_run(quiet);
  const auto saad_fault = saad_run(faulty);
  std::size_t saad_fault_windows = 0, on_faulted_host = 0;
  {
    std::set<std::size_t> windows_with;
    for (const auto& a : saad_fault) {
      windows_with.insert(a.window);
      if (a.host == 3) on_faulted_host++;
    }
    saad_fault_windows = windows_with.size();
  }

  TextTable table({"Detector", "quiet windows flagged", "fault windows flagged",
                   "localization"});
  table.add_row({"PCA (Xu et al.)",
                 TextTable::num(static_cast<std::int64_t>(pca_quiet)) + "/" +
                     TextTable::num(static_cast<std::int64_t>(quiet_windows)),
                 TextTable::num(static_cast<std::int64_t>(pca_fault)) + "/" +
                     TextTable::num(static_cast<std::int64_t>(fault_windows)),
                 "window only"});
  table.add_row(
      {"SAAD",
       TextTable::num(static_cast<std::int64_t>(saad_quiet.size())) +
           " anomalies",
       TextTable::num(static_cast<std::int64_t>(saad_fault_windows)) + "/" +
           TextTable::num(static_cast<std::int64_t>(fault_windows)) +
           " windows (" +
           TextTable::num(static_cast<std::int64_t>(saad_fault.size())) +
           " anomalies)",
       "stage + host + flow"});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("of SAAD's fault-phase anomalies, %zu/%zu point at the faulted "
              "host —\nand each carries the anomalous flow's log templates. "
              "PCA's flags carry no\nlocalization: the operator still has to "
              "search the logs.\n",
              on_faulted_host, saad_fault.size());
  return 0;
}
