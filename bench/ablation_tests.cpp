// Ablation — the analyzer's statistical knobs (DESIGN.md §5):
//
//  (1) hypothesis-test family for the outlier-proportion decision: the
//      paper's t-test vs a z-test vs the exact binomial tail;
//  (2) significance level alpha (paper: 0.001);
//  (3) the k-fold stability filter's `unstable_factor` (how lenient the
//      cross-validated duration-threshold check is).
//
// Protocol: one deterministic Cassandra run with a delay-WAL-high fault;
// replay the captured synopsis stream through detectors built with each
// configuration and compare anomalies raised during the quiet phase (false
// positives) vs the fault phase (signal).
#include <cmath>
#include <cstdio>
#include <map>

#include "common/table.h"
#include "stats/descriptive.h"
#include "stats/p2_quantile.h"
#include "harness.h"

namespace saad::bench {
namespace {

/// Counts anomalies a detector with `config` raises on each phase.
std::pair<std::size_t, std::size_t> run_config(
    const core::OutlierModel& model, const core::DetectorConfig& config,
    const std::vector<core::Synopsis>& quiet,
    const std::vector<core::Synopsis>& faulty) {
  core::AnomalyDetector detector(&model, config);
  for (const auto& s : quiet) detector.ingest(s);
  std::size_t quiet_count = 0, faulty_count = 0;
  // Windows interleave; count by window start against the phase boundary.
  const UsTime boundary = faulty.empty() ? 0 : faulty.front().start;
  for (const auto& s : faulty) detector.ingest(s);
  for (const auto& a : detector.finish()) {
    if (a.window_start < boundary) {
      quiet_count++;
    } else {
      faulty_count++;
    }
  }
  return {quiet_count, faulty_count};
}

}  // namespace
}  // namespace saad::bench

int main(int argc, char** argv) {
  using namespace saad;
  using namespace saad::bench;
  Flags flags(argc, argv);
  const UsTime phase = minutes(flags.get_int("phase-min", 8));

  std::printf("=== Ablation: hypothesis test family, alpha, and k-fold "
              "stability factor ===\n\n");

  // Capture one deterministic run: training trace, a quiet phase, and a
  // delay-WAL-high fault phase, as raw synopsis streams.
  std::vector<core::Synopsis> training, quiet, faulty;
  {
    CassandraWorld world(/*seed=*/77);
    world.warm_train_arm(minutes(2), minutes(6));
    training = world.monitor->training_trace();

    // Re-enter training mode to capture raw streams phase by phase.
    const UsTime t0 = world.engine.now();
    world.monitor->start_training();
    world.engine.run_until(t0 + phase);
    world.monitor->poll(world.engine.now());
    quiet = world.monitor->training_trace();

    faults::FaultSpec fault;
    fault.host = 3;
    fault.activity = faults::Activity::kWalAppend;
    fault.mode = faults::FaultMode::kDelay;
    fault.delay = ms(100);
    fault.intensity = 1.0;
    fault.from = world.engine.now();
    fault.until = fault.from + phase;
    world.plane.add(fault);
    world.monitor->start_training();
    world.engine.run_until(fault.until);
    world.monitor->poll(world.engine.now());
    faulty = world.monitor->training_trace();
  }
  std::printf("streams: %zu training, %zu quiet-phase, %zu fault-phase "
              "synopses\n\n",
              training.size(), quiet.size(), faulty.size());

  // --- (1) + (2): test family x alpha -------------------------------------
  {
    TextTable table({"test", "alpha", "quiet-phase anomalies (FP)",
                     "fault-phase anomalies"});
    const core::OutlierModel model = core::OutlierModel::train(training);
    for (const auto kind : {stats::ProportionTestKind::kTTest,
                            stats::ProportionTestKind::kZTest,
                            stats::ProportionTestKind::kExactBinomial}) {
      for (const double alpha : {0.001, 0.01, 0.05}) {
        core::DetectorConfig config;
        config.test_kind = kind;
        config.alpha = alpha;
        const auto [fp, signal] = run_config(model, config, quiet, faulty);
        const char* name =
            kind == stats::ProportionTestKind::kTTest   ? "t-test (paper)"
            : kind == stats::ProportionTestKind::kZTest ? "z-test"
                                                        : "exact binomial";
        table.add_row({name, TextTable::num(alpha, 3),
                       TextTable::num(static_cast<std::int64_t>(fp)),
                       TextTable::num(static_cast<std::int64_t>(signal))});
      }
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  // --- (3): unstable_factor -------------------------------------------------
  {
    TextTable table({"unstable_factor", "signatures kept for perf detection",
                     "quiet FP", "fault-phase anomalies"});
    for (const double factor : {0.5, 1.0, 2.0, 4.0, 1000.0}) {
      core::TrainingConfig tc;
      tc.unstable_factor = factor;
      const core::OutlierModel model = core::OutlierModel::train(training, tc);
      std::size_t perf_applicable = 0;
      for (const auto& s : training) {
        const auto c = model.classify(core::make_feature(s));
        if (c.perf_applicable) perf_applicable++;
      }
      const auto [fp, signal] = run_config(model, {}, quiet, faulty);
      table.add_row(
          {factor > 100 ? "off (keep all)" : TextTable::num(factor, 1),
           TextTable::num(100.0 * static_cast<double>(perf_applicable) /
                              static_cast<double>(training.size()),
                          1) + "% of tasks",
           TextTable::num(static_cast<std::int64_t>(fp)),
           TextTable::num(static_cast<std::int64_t>(signal))});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  // --- Extension: streaming (P2) vs exact duration thresholds ---------------
  {
    // The paper buffers all synopses (up to 500 MB) to compute exact p99
    // duration thresholds. P2 needs five doubles per signature; how much
    // threshold accuracy would streaming training give up?
    std::map<std::pair<core::StageId, core::Signature>, std::vector<double>>
        groups;
    for (const auto& s : training) {
      groups[{s.stage, core::Signature::from(s)}].push_back(
          static_cast<double>(s.duration));
    }
    double worst = 0.0, sum = 0.0;
    std::size_t measured = 0;
    for (auto& [key, durations] : groups) {
      if (durations.size() < 1000) continue;
      stats::P2Quantile p2(0.99);
      for (double d : durations) p2.add(d);
      const double exact = stats::percentile(durations, 0.99);
      if (exact <= 0) continue;
      const double rel = std::abs(p2.value() - exact) / exact;
      worst = std::max(worst, rel);
      sum += rel;
      measured++;
    }
    std::printf("streaming thresholds (P2, 5 doubles/signature vs exact "
                "buffered percentiles):\n  %zu signature groups, mean "
                "relative p99 error %.2f%%, worst %.2f%% — the paper's "
                "500 MB\n  training buffer is avoidable at ~no threshold "
                "cost.\n\n",
                measured, 100.0 * sum / static_cast<double>(measured),
                100.0 * worst);
  }

  std::printf("Takeaways: at alpha=0.001 the three test families agree "
              "almost exactly on this\nworkload (huge per-window task "
              "counts), so the paper's t-test choice is safe;\nloosening "
              "alpha multiplies quiet-phase false positives while adding "
              "almost no\nfault-phase signal — the paper's 0.001 is the "
              "right corner. An over-strict stability\nfactor (0.5) "
              "excludes most signatures from performance detection and "
              "loses a third\nof the fault signal; the paper-style factor "
              "(~2) keeps full coverage. On this\nsteady-state trace even "
              "'off' adds no false positives — the filter matters for\n"
              "nonstationary flows (see the kfold unit tests), not here.\n");
  return 0;
}
