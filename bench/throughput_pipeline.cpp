// Parallel analyzer pipeline throughput: synopses/sec ingested *and*
// analyzed, end to end, at 1/2/4/8 analyzer threads.
//
// The pipeline under test is the production shape:
//
//   P producer threads --batched Producer handles--> sharded SynopsisChannel
//     --single consumer drain--> AnalyzerPool(analyzer_threads = T)
//     --periodic advance_to + final finish--> anomalies
//
// The workload is synthetic (generated once, identical for every T): a
// trained model over S stages x H hosts with a handful of signatures per
// stage, then a detection stream spanning many windows with occasional rare
// signatures and stretched durations so both the flow and the performance
// tests actually run. Producers replay time-ordered slices of the stream.
//
// Scaling expectation: on a machine with >= 4 cores, 4 analyzer threads
// should sustain >= 2x the 1-thread synopses/sec (the per-synopsis cost is
// dominated by classification + window bookkeeping, which the pool
// partitions). On fewer cores the ratio degrades toward 1x — the bench
// prints hardware_concurrency so the number can be read in context.
#include <chrono>
#include <cstdio>
#include <thread>

#include "core/analyzer_pool.h"
#include "harness.h"
#include "obs/metrics.h"

namespace {

using namespace saad;

struct Workload {
  core::OutlierModel model;
  std::vector<std::vector<core::Synopsis>> slices;  // per producer, time-ordered
  std::size_t total = 0;
  UsTime span = 0;
};

core::Synopsis make_synopsis(core::HostId host, core::StageId stage,
                             UsTime start, UsTime duration,
                             const std::vector<core::LogPointId>& points) {
  core::Synopsis s;
  s.host = host;
  s.stage = stage;
  s.uid = 0;  // unused by the analyzer
  s.start = start;
  s.duration = duration;
  for (auto p : points) s.log_points.push_back({p, 1});
  return s;
}

/// Deterministic synthetic cluster trace. Each stage has 3 common signature
/// variants plus a rare one; durations are uniform with a heavy tail.
Workload build_workload(std::uint64_t seed, std::size_t training,
                        std::size_t detection, std::size_t producers) {
  constexpr core::StageId kStages = 16;
  constexpr core::HostId kHosts = 8;

  auto gen = [&](Rng& rng, std::size_t count, double rare_rate,
                 double slow_rate, std::vector<core::Synopsis>& out) {
    const UsTime spacing = 500;  // 2000 tasks per virtual second
    for (std::size_t i = 0; i < count; ++i) {
      const auto stage = static_cast<core::StageId>(rng.next_below(kStages));
      const auto host = static_cast<core::HostId>(rng.next_below(kHosts));
      const core::LogPointId base = static_cast<core::LogPointId>(stage * 16);
      std::vector<core::LogPointId> points = {base,
                                              static_cast<core::LogPointId>(base + 1)};
      const auto variant = rng.next_below(3);
      for (std::uint64_t v = 0; v <= variant; ++v)
        points.push_back(static_cast<core::LogPointId>(base + 2 + v));
      if (rng.next_double() < rare_rate)
        points.push_back(static_cast<core::LogPointId>(base + 9));
      UsTime duration = 1000 + static_cast<UsTime>(rng.next_below(4000));
      if (rng.next_double() < slow_rate) duration *= 50;
      out.push_back(make_synopsis(host, stage,
                                  static_cast<UsTime>(i) * spacing, duration,
                                  points));
    }
  };

  Rng train_rng(seed);
  std::vector<core::Synopsis> train_trace;
  train_trace.reserve(training);
  gen(train_rng, training, 0.002, 0.01, train_trace);

  Rng detect_rng(seed ^ 0xD7);
  std::vector<core::Synopsis> stream;
  stream.reserve(detection);
  gen(detect_rng, detection, 0.01, 0.03, stream);

  Workload w{core::OutlierModel::train(train_trace), {}, stream.size(),
             stream.empty() ? 0 : stream.back().start};
  // Round-robin time slices: every producer walks the timeline in lockstep,
  // so the consumer's advance watermark stays valid for all of them.
  w.slices.resize(producers);
  for (std::size_t i = 0; i < stream.size(); ++i)
    w.slices[i % producers].push_back(std::move(stream[i]));
  return w;
}

struct RunResult {
  double seconds = 0;
  std::size_t anomalies = 0;
  std::uint64_t ingested = 0;
};

/// `live` enables periodic advance_to at a drained-content watermark — the
/// production shape, but window attribution of stragglers then depends on
/// real arrival timing, so anomaly counts can vary run to run. The default
/// (finish-only) closes windows once at the end: same tests, same
/// throughput path, and counts that are comparable across thread counts.
RunResult run_pipeline(const Workload& w, std::size_t analyzer_threads,
                       UsTime window, bool live) {
  core::SynopsisChannel channel;
  core::DetectorConfig config;
  config.window = window;
  config.analyzer_threads = analyzer_threads;
  core::AnalyzerPool pool(&w.model, config);

  const auto begin = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  producers.reserve(w.slices.size());
  for (const auto& slice : w.slices) {
    producers.emplace_back([&channel, &slice] {
      auto handle = channel.producer();
      for (const auto& s : slice) handle.push(s);
    });
  }

  std::vector<core::Anomaly> anomalies;
  std::vector<core::Synopsis> batch;
  UsTime watermark = 0;
  std::uint64_t drained = 0;
  while (drained < w.total) {
    batch.clear();
    channel.drain(batch);
    if (batch.empty()) {
      std::this_thread::yield();
      continue;
    }
    drained += batch.size();
    for (const auto& s : batch) {
      watermark = std::max(watermark, s.start);
      pool.ingest(s);
    }
    // Producers advance the timeline in lockstep; two windows of slack keep
    // stragglers out of closed windows.
    if (live && watermark > 2 * window) {
      auto produced = pool.advance_to(watermark - 2 * window);
      anomalies.insert(anomalies.end(), produced.begin(), produced.end());
    }
  }
  for (auto& p : producers) p.join();
  batch.clear();
  channel.drain(batch);
  for (const auto& s : batch) pool.ingest(s);
  auto tail = pool.finish();
  anomalies.insert(anomalies.end(), tail.begin(), tail.end());
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  return {seconds, anomalies.size(), pool.ingested()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace saad::bench;
  Flags flags(argc, argv);
  const std::size_t training =
      static_cast<std::size_t>(flags.get_int("training", 100000));
  const std::size_t detection =
      static_cast<std::size_t>(flags.get_int("synopses", 400000));
  const std::size_t producers =
      static_cast<std::size_t>(flags.get_int("producers", 4));
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const saad::UsTime window = saad::sec(flags.get_int("window-sec", 10));
  const int repeats = static_cast<int>(flags.get_int("repeats", 3));
  const bool live = flags.get_int("live", 0) != 0;

  std::printf("=== Parallel analyzer pipeline throughput ===\n\n");
  // The synopses/sec here double as the SAAD_METRICS overhead experiment:
  // run once from a default build and once from -DSAAD_METRICS=OFF and
  // compare (the acceptance bar is <= 3% difference).
  std::printf("self-telemetry: SAAD_METRICS=%s\n",
              saad::obs::kMetricsEnabled ? "ON" : "OFF");
  std::printf("hardware threads: %u, producers: %zu, stream: %zu synopses, "
              "window: %llds, mode: %s\n\n",
              std::thread::hardware_concurrency(), producers, detection,
              static_cast<long long>(window / saad::kUsPerSec),
              live ? "live periodic advance (--live=1: anomaly counts may "
                     "vary with arrival timing)"
                   : "finish-only window close (deterministic counts)");

  const Workload w = build_workload(seed, training, detection, producers);

  const std::size_t thread_counts[] = {1, 2, 4, 8};
  double base_rate = 0;
  std::printf("%-18s %14s %12s %10s %10s\n", "analyzer_threads",
              "synopses/sec", "seconds", "anomalies", "speedup");
  for (std::size_t t : thread_counts) {
    RunResult best{};
    for (int r = 0; r < repeats; ++r) {
      const RunResult run = run_pipeline(w, t, window, live);
      if (best.seconds == 0 || run.seconds < best.seconds) best = run;
    }
    const double rate = static_cast<double>(w.total) / best.seconds;
    if (t == 1) base_rate = rate;
    std::printf("%-18zu %14.0f %12.3f %10zu %9.2fx\n", t, rate, best.seconds,
                best.anomalies, rate / base_rate);
  }
  std::printf("\n(speedup is vs the serial analyzer on this machine; the "
              "partition is by hash(host, stage), so available parallelism "
              "also caps at the number of active (host, stage) pairs)\n");
  return 0;
}
