// Cost of sampled pipeline spans (obs/span.h) on the live serving path.
//
// The admin plane's pitch is "per-hop latency attribution for ~free": every
// hook self-gates on one relaxed atomic load when tracing is off, and at the
// default 1-in-64 rate the enabled cost is a handful of uncontended mutex
// acquisitions per *batch* (never per synopsis). This bench pins that claim
// two ways:
//
//   1. Hook micro-costs: ns/op for the producer hook with tracing disabled,
//      enabled-but-unsampled, and the full sampled six-hop lifecycle.
//   2. Pipeline emulation: batches of synthetic synopsis work (a
//      deterministic hash mix standing in for decode + ingest + window
//      bookkeeping) run with tracing off vs enabled at --sample-every;
//      the throughput delta is the number the acceptance bar cares about.
//
// --enforce turns the report into a gate: exit 1 if the emulated pipeline
// overhead at the default 1-in-64 rate exceeds --bar (default 3%). CI runs
// the gate on a reduced batch count as a smoke against regressions that
// would make tracing too expensive to leave on in production.
//
//   span_overhead [--batches=N] [--synopses=N] [--points=N]
//                 [--sample-every=N] [--repeats=N] [--bar-pct=P] [--enforce]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "harness.h"
#include "obs/span.h"

namespace {

using namespace saad;

template <typename T>
inline void keep(T& value) {
  asm volatile("" : "+r,m"(value) : : "memory");
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Deterministic stand-in for per-batch pipeline work: mixes `synopses` x
/// `points` pseudo log-point hashes the way feature extraction walks a
/// batch. Pure CPU, no allocation — the floor the span hooks ride on.
std::uint64_t batch_work(std::uint64_t seed, std::size_t synopses,
                         std::size_t points) {
  std::uint64_t acc = seed;
  for (std::size_t s = 0; s < synopses; ++s) {
    std::uint64_t h = seed + s * 0x9e3779b97f4a7c15ull;
    for (std::size_t p = 0; p < points; ++p) {
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdull;
      h ^= h >> 29;
      acc += h;
    }
  }
  return acc;
}

struct PipelineRun {
  double batches_per_s = 0;
  std::uint64_t checksum = 0;  // defeats dead-code elimination
};

/// Emulates serve's consumer loop: per batch, the synthetic work plus the
/// full hook sequence against `tracer` (which may be disabled).
PipelineRun run_pipeline(obs::SpanTracer& tracer, std::size_t batches,
                         std::size_t synopses, std::size_t points) {
  PipelineRun run;
  std::uint64_t cumulative = 0;
  const double begin = now_s();
  for (std::size_t b = 0; b < batches; ++b) {
    const std::uint64_t token = tracer.on_batch_decoded(synopses);
    cumulative += synopses;
    tracer.on_published(token, cumulative);
    run.checksum += batch_work(b, synopses, points);
    tracer.on_dequeued(cumulative);
    tracer.on_assigned(cumulative);
    run.checksum += batch_work(~b, synopses / 4 + 1, points);
    tracer.on_window_close(cumulative);
    tracer.on_verdict_emit(cumulative);
  }
  const double elapsed = now_s() - begin;
  keep(run.checksum);
  run.batches_per_s = static_cast<double>(batches) / elapsed;
  return run;
}

/// ns/op of `op` over `ops` iterations.
template <typename Op>
double time_ns_per_op(std::size_t ops, Op op) {
  const double begin = now_s();
  for (std::size_t i = 0; i < ops; ++i) op(i);
  return (now_s() - begin) * 1e9 / static_cast<double>(ops);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const std::size_t batches =
      static_cast<std::size_t>(flags.get_int("batches", 200'000));
  const std::size_t synopses =
      static_cast<std::size_t>(flags.get_int("synopses", 64));
  const std::size_t points =
      static_cast<std::size_t>(flags.get_int("points", 24));
  const std::uint64_t sample_every =
      static_cast<std::uint64_t>(flags.get_int("sample-every", 64));
  const int repeats = static_cast<int>(flags.get_int("repeats", 3));
  const double bar_pct = flags.get_double("bar-pct", 3.0);
  const bool enforce = flags.has("enforce");

  std::printf("=== Span tracing overhead (sample_every=%llu) ===\n\n",
              static_cast<unsigned long long>(sample_every));

  // ---- Hook micro-costs ----------------------------------------------------
  const std::size_t hook_ops = 5'000'000;
  obs::SpanTracer off;  // constructed disabled
  const double disabled_ns = time_ns_per_op(hook_ops, [&](std::size_t) {
    std::uint64_t token = off.on_batch_decoded(synopses);
    keep(token);
  });

  obs::SpanTracer unsampled;
  {
    obs::SpanTracer::Options options;
    options.sample_every = hook_ops + 1;  // batch 0 sampled, then never again
    unsampled.enable(options);
    unsampled.on_batch_decoded(synopses);  // burn the sampled batch
  }
  const double enabled_ns = time_ns_per_op(hook_ops, [&](std::size_t) {
    std::uint64_t token = unsampled.on_batch_decoded(synopses);
    keep(token);
  });

  obs::SpanTracer sampled;
  {
    obs::SpanTracer::Options options;
    options.sample_every = 1;
    options.ring_capacity = 64;
    sampled.enable(options);
  }
  std::uint64_t cumulative = 0;
  const double lifecycle_ns = time_ns_per_op(500'000, [&](std::size_t) {
    const std::uint64_t token = sampled.on_batch_decoded(synopses);
    cumulative += synopses;
    sampled.on_published(token, cumulative);
    sampled.on_dequeued(cumulative);
    sampled.on_assigned(cumulative);
    sampled.on_window_close(cumulative);
    sampled.on_verdict_emit(cumulative);
  });

  std::printf("hook: on_batch_decoded, tracing disabled     %8.1f ns/op\n",
              disabled_ns);
  std::printf("hook: on_batch_decoded, enabled unsampled    %8.1f ns/op\n",
              enabled_ns);
  std::printf("hook: full 6-hop sampled lifecycle           %8.1f ns/span\n\n",
              lifecycle_ns);

  // ---- Pipeline emulation --------------------------------------------------
  // Best-of-repeats on both sides: the bar compares capability, not noise.
  double base_best = 0, traced_best = 0;
  for (int r = 0; r < repeats; ++r) {
    obs::SpanTracer disabled_tracer;
    base_best = std::max(
        base_best,
        run_pipeline(disabled_tracer, batches, synopses, points).batches_per_s);

    obs::SpanTracer tracer;
    obs::SpanTracer::Options options;
    options.sample_every = sample_every;
    options.ring_capacity = 1024;
    tracer.enable(options);
    traced_best = std::max(
        traced_best,
        run_pipeline(tracer, batches, synopses, points).batches_per_s);
  }
  const double overhead_pct = 100.0 * (base_best - traced_best) / base_best;

  std::printf("pipeline: tracing off       %12.0f batches/s\n", base_best);
  std::printf("pipeline: tracing 1-in-%-4llu%12.0f batches/s\n",
              static_cast<unsigned long long>(sample_every), traced_best);
  std::printf("pipeline: overhead          %11.2f %%  (bar: %.1f%%)\n",
              overhead_pct, bar_pct);

  if (enforce && overhead_pct > bar_pct) {
    std::fprintf(stderr,
                 "span_overhead: FAIL — %.2f%% overhead exceeds the %.1f%% "
                 "bar at 1-in-%llu sampling\n",
                 overhead_pct, bar_pct,
                 static_cast<unsigned long long>(sample_every));
    return 1;
  }
  return 0;
}
