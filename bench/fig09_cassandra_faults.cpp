// Figure 9 (a-d) + Table 1 — Anomalies per stage in Cassandra under injected
// I/O faults.
//
// Paper protocol (§5.4): on host 4 (index 3 here), inject the fault at 1%
// intensity at minute 10 for 10 minutes, then at 100% intensity at minute 30
// for 10 minutes; watch SAAD's per-stage flow/performance anomalies, the
// error-log baseline, and throughput over a 50-minute timeline.
//
// Four experiments:
//   (a) error on appending to WAL      -> Table flow anomalies (frozen
//       MemTable, Table 1), hinted-hand-off flows on healthy hosts, barely
//       any error log lines, eventual OOM crash of host 4;
//   (b) error on flushing MemTable     -> Memtable/CompactionManager flow
//       anomalies, GCInspector pressure that lingers after the fault lifts;
//   (c) delay on appending to WAL      -> WorkerProcess/StorageProxy
//       performance anomalies;
//   (d) delay on flushing MemTable     -> CommitLog/WorkerProcess
//       performance anomalies.
#include <cstdio>
#include <string>

#include "harness.h"

namespace saad::bench {
namespace {

struct Experiment {
  const char* key;
  const char* title;
  faults::Activity activity;
  faults::FaultMode mode;
};

constexpr Experiment kExperiments[] = {
    {"error-wal", "(a) Error on appending to WAL", faults::Activity::kWalAppend,
     faults::FaultMode::kError},
    {"error-flush", "(b) Error on flushing MemTable",
     faults::Activity::kMemtableFlush, faults::FaultMode::kError},
    {"delay-wal", "(c) Delay on appending to WAL",
     faults::Activity::kWalAppend, faults::FaultMode::kDelay},
    {"delay-flush", "(d) Delay on flushing MemTable",
     faults::Activity::kMemtableFlush, faults::FaultMode::kDelay},
};

void run_experiment(const Experiment& exp, UsTime timeline,
                    std::uint64_t seed) {
  std::printf("=== Figure 9 %s ===\n\n", exp.title);

  CassandraWorld world(seed);
  world.warm_train_arm(minutes(2), minutes(6));
  const UsTime t0 = world.engine.now();  // experiment timeline origin
  const int faulted_host = 3;            // the paper's "host 4"

  faults::FaultSpec low;
  low.host = faulted_host;
  low.activity = exp.activity;
  low.mode = exp.mode;
  low.intensity = 0.01;
  low.delay = ms(100);
  low.from = t0 + minutes(10);
  low.until = t0 + minutes(20);
  world.plane.add(low);

  faults::FaultSpec high = low;
  high.intensity = 1.0;
  high.from = t0 + minutes(30);
  high.until = t0 + minutes(40);
  world.plane.add(high);

  auto anomalies = world.run_collect(t0 + timeline);
  // Shift windows to the experiment origin for the chart.
  const std::size_t offset = static_cast<std::size_t>(t0 / kUsPerMin);
  for (auto& a : anomalies) {
    a.window -= offset;
    a.window_start -= t0;
  }

  print_anomalies("anomalies per Stage(host); faults on host 3: low@10-20, "
                  "high@30-40",
                  anomalies, world.registry,
                  static_cast<std::size_t>(timeline / kUsPerMin));

  // Error-log baseline overlay: what a grep-for-ERROR monitor would see.
  const auto& alerts = world.sinks.errors->alerts();
  std::printf("error-log baseline: %zu ERROR lines total;", alerts.size());
  std::size_t shown = 0;
  for (const auto& alert : alerts) {
    if (alert.at < t0) continue;
    if (shown++ >= 6) {
      std::printf(" ...");
      break;
    }
    std::printf(" [min %lld]",
                static_cast<long long>(to_min(alert.at - t0)));
  }
  std::printf("\n\n");
  print_throughput(*world.ycsb, t0 + timeline);

  std::printf("host states:");
  for (int n = 0; n < world.cassandra->num_nodes(); ++n) {
    std::printf(" host%d=%s", n,
                world.cassandra->node_crashed(n)   ? "CRASHED"
                : world.cassandra->node_wedged(n) ? "wedged"
                                                   : "up");
  }
  std::printf("  hints stored: %llu\n\n",
              static_cast<unsigned long long>(world.cassandra->hints_stored()));

  if (std::string(exp.key) == "error-wal") {
    // Table 1: the frozen-MemTable flow vs the normal Table flow.
    const auto& lp = world.cassandra->points();
    const core::Signature normal({lp.tbl_start, lp.tbl_apply, lp.tbl_done});
    const core::Signature anomalous({lp.tbl_frozen});
    std::printf("--- Table 1: normal vs anomalous Table-stage signature ---\n");
    std::printf("%s\n",
                core::signature_comparison(normal, anomalous, world.registry)
                    .c_str());
  }
}

}  // namespace
}  // namespace saad::bench

int main(int argc, char** argv) {
  using namespace saad;
  using namespace saad::bench;
  Flags flags(argc, argv);
  const UsTime timeline = minutes(flags.get_int("minutes", 50));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2014));
  const std::string only = flags.get("exp", "");

  for (const auto& exp : kExperiments) {
    if (!only.empty() && only != exp.key) continue;
    run_experiment(exp, timeline, seed);
  }
  return 0;
}
