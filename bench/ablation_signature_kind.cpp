// Ablation — signature definition: set of distinct log points (the paper's
// choice) vs a frequency-sensitive variant (log point + log2-bucketed count).
//
// The paper argues for set semantics: "a task signature is a set of unique
// log points encountered by the task" — frequency differences (how many
// packets a block had) are normal variation, not flow changes. This ablation
// quantifies what frequency-sensitivity would cost: the signature space
// explodes, the head gets lighter, and training needs far more data before
// new-signature false positives die out.
#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "common/table.h"
#include "harness.h"

namespace saad::bench {
namespace {

/// Frequency-bucketed signature: (point, floor(log2(count))) pairs.
std::vector<std::uint32_t> freq_signature(const core::Synopsis& s) {
  std::vector<std::uint32_t> out;
  out.reserve(s.log_points.size());
  for (const auto& lp : s.log_points) {
    std::uint32_t bucket = 0;
    std::uint32_t c = lp.count;
    while (c >>= 1) bucket++;
    out.push_back((static_cast<std::uint32_t>(lp.point) << 8) | bucket);
  }
  return out;
}

struct Stats {
  std::size_t distinct = 0;
  std::size_t covering_95 = 0;
  double new_rate_second_half = 0;  // new-signature tasks per 1k tasks
};

template <typename KeyFn>
Stats evaluate(const std::vector<core::Synopsis>& trace, KeyFn key_fn) {
  using Key = decltype(key_fn(trace[0]));
  std::map<std::pair<core::StageId, Key>, std::uint64_t> counts;
  // First half = "training"; second half = fresh traffic.
  const std::size_t half = trace.size() / 2;
  for (std::size_t i = 0; i < half; ++i)
    counts[{trace[i].stage, key_fn(trace[i])}]++;

  Stats stats;
  stats.distinct = counts.size();
  std::vector<std::uint64_t> sorted;
  for (const auto& [k, c] : counts) sorted.push_back(c);
  std::sort(sorted.rbegin(), sorted.rend());
  std::uint64_t cum = 0;
  for (auto c : sorted) {
    cum += c;
    stats.covering_95++;
    if (cum >= half * 95 / 100) break;
  }
  std::uint64_t fresh = 0;
  for (std::size_t i = half; i < trace.size(); ++i) {
    if (!counts.contains({trace[i].stage, key_fn(trace[i])})) fresh++;
  }
  stats.new_rate_second_half =
      1000.0 * static_cast<double>(fresh) /
      static_cast<double>(trace.size() - half);
  return stats;
}

}  // namespace
}  // namespace saad::bench

int main(int argc, char** argv) {
  using namespace saad;
  using namespace saad::bench;
  Flags flags(argc, argv);
  const auto train_min = flags.get_int("train-min", 8);

  std::printf("=== Ablation: set signatures (paper) vs frequency-bucketed "
              "signatures ===\n\n");

  // The HBase/HDFS world: DataXceiver tasks carry per-packet frequencies
  // (L2/L4 counts vary block-by-block), so this is where set vs frequency
  // semantics actually diverge.
  HBaseWorld world(/*seed=*/5);
  world.warm_train_arm(minutes(2), minutes(train_min));
  const auto& trace = world.monitor->training_trace();
  std::printf("trace: %zu HBase/HDFS task synopses\n\n", trace.size());

  const auto set_stats = evaluate(
      trace, [](const core::Synopsis& s) { return core::Signature::from(s); });
  const auto freq_stats = evaluate(trace, freq_signature);

  TextTable table({"Signature kind", "distinct", "covering 95%",
                   "new-sig rate (per 1k fresh tasks)"});
  table.add_row({"set of points (paper)",
                 TextTable::num(static_cast<std::int64_t>(set_stats.distinct)),
                 TextTable::num(static_cast<std::int64_t>(set_stats.covering_95)),
                 TextTable::num(set_stats.new_rate_second_half, 3)});
  table.add_row(
      {"frequency-bucketed",
       TextTable::num(static_cast<std::int64_t>(freq_stats.distinct)),
       TextTable::num(static_cast<std::int64_t>(freq_stats.covering_95)),
       TextTable::num(freq_stats.new_rate_second_half, 3)});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Takeaway: frequency-sensitive signatures enlarge the "
              "signature space (%zu -> %zu here;\nthe gap grows with "
              "block-size variance) without adding flow information — a "
              "task that\nwrote 7 packets instead of 6 is not a different "
              "execution path. Set semantics keep\nthe space minimal, "
              "which is what makes the rare-signature statistics and the\n"
              "new-signature rule workable; the frequencies stay available "
              "in the synopsis for\nroot-cause inspection.\n",
              set_stats.distinct, freq_stats.distinct);
  return 0;
}
