// Figure 10 (a, b) + Table 2 — Anomalies per stage in HBase Regionservers
// and HDFS DataNodes under escalating disk hogs.
//
// Paper protocol (§5.5, Table 2): dd-style disk hogs on all 4 hosts —
//   low        minutes  8-16   1 process
//   medium     minutes 28-44   2 processes
//   high-1     minutes 56-64   4 processes
//   high-2     minutes 116-130 4 processes (during the YCSB put-batching
//              backlog: the server sees mostly reads)
// plus a major compaction around minute 150 (a legitimate rare activity that
// SAAD flags — the paper's false positive).
//
// Expected shapes: low ≈ invisible; medium -> Call/Handler performance
// anomalies on Regionservers but clean DataNodes (CPU contention); high-1 ->
// WAL-sync timeouts, the premature-recovery-termination bug (RecoverBlocks
// flow anomalies), a Regionserver crash, and a cluster-wide flow-outlier
// surge (SplitLogWorker/OpenRegionHandler); high-2 -> mostly read-side
// anomalies and few 'log sync' tasks; ~150 -> compaction-stage flow
// anomalies on Regionservers and DataXceiver load on DataNodes.
#include <cstdio>
#include <set>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace saad;
  using namespace saad::bench;
  Flags flags(argc, argv);
  const UsTime timeline = minutes(flags.get_int("minutes", 180));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2014));

  std::printf("=== Figure 10: HBase/HDFS disk-hog faults (Table 2 schedule) "
              "===\n\n");

  HBaseWorld world(seed);
  world.warm_train_arm(minutes(2), minutes(8));
  const UsTime t0 = world.engine.now();

  struct Phase {
    const char* name;
    int minutes_from, minutes_until, processes;
  };
  const Phase phases[] = {
      {"low", 8, 16, 1},
      {"medium", 28, 44, 2},
      {"high-1", 56, 64, 4},
      {"high-2", 116, 130, 4},
  };
  for (const auto& p : phases) {
    faults::HogSpec hog;
    hog.host = faults::kAnyHost;
    hog.from = t0 + minutes(p.minutes_from);
    hog.until = t0 + minutes(p.minutes_until);
    hog.processes = p.processes;
    world.plane.add_hog(hog);
    std::printf("fault: %-7s dd x%d at minutes %d-%d\n", p.name, p.processes,
                p.minutes_from, p.minutes_until);
  }

  // High-2 coincides with the put-batching backlog: server-side writes dry
  // up and the mix becomes read-dominated (§5.5, the YCSB 0.1.4 quirk).
  workload::YcsbOptions::MixOverride quirk;
  quirk.from = t0 + minutes(112);
  quirk.until = t0 + minutes(134);
  quirk.read_proportion = 0.9;
  world.ycsb->options().mix_overrides.push_back(quirk);
  std::printf("quirk: put-batching backlog emulated as a read-heavy mix at "
              "minutes 112-134\n\n");

  // The legitimate-but-rare major compaction near minute 150.
  const UsTime compaction_at = t0 + minutes(150);
  world.engine.schedule_at(compaction_at,
                           [&] { world.hbase->trigger_major_compaction(); });

  auto anomalies = world.run_collect(t0 + timeline);
  const std::size_t offset = static_cast<std::size_t>(t0 / kUsPerMin);
  for (auto& a : anomalies) {
    a.window -= offset;
    a.window_start -= t0;
  }

  // Split rows like the paper: (a) Regionserver stages, (b) DataNode stages.
  const std::set<core::StageId> dn_stages = {
      world.hdfs->stages().data_xceiver, world.hdfs->stages().packet_responder,
      world.hdfs->stages().handler, world.hdfs->stages().listener,
      world.hdfs->stages().reader, world.hdfs->stages().recover_blocks,
      world.hdfs->stages().data_transfer};
  std::vector<core::Anomaly> rs_anomalies, dn_anomalies;
  for (const auto& a : anomalies) {
    (dn_stages.contains(a.stage) ? dn_anomalies : rs_anomalies).push_back(a);
  }

  const auto windows = static_cast<std::size_t>(timeline / kUsPerMin);
  print_anomalies("(a) HBase Regionservers", rs_anomalies, world.registry,
                  windows, 24);
  print_anomalies("(b) HDFS DataNodes", dn_anomalies, world.registry, windows,
                  24);

  print_throughput(*world.ycsb, t0 + timeline);

  std::printf("regionserver states:");
  for (int i = 0; i < world.hbase->num_regionservers(); ++i) {
    std::printf(" RS%d=%s", i,
                world.hbase->rs_crashed(i) ? "CRASHED" : "up");
  }
  std::printf("\nrecoveries attempted: %llu, recovery rejections (the bug): "
              "%llu, regions reassigned: %llu\n",
              static_cast<unsigned long long>(
                  world.hbase->recoveries_attempted()),
              static_cast<unsigned long long>(
                  world.hdfs->recovery_rejections()),
              static_cast<unsigned long long>(
                  world.hbase->regions_reassigned()));

  // The paper's high-2 observation: very few 'log sync' tasks vs high-1.
  std::uint64_t h1_puts = 0, h2_puts = 0;
  const auto& server_puts = world.ycsb->stats().server_puts;
  for (std::size_t w = 0; w < server_puts.num_windows(); ++w) {
    const UsTime at = static_cast<UsTime>(w) * sec(10);
    if (at >= t0 + minutes(56) && at < t0 + minutes(64))
      h1_puts += server_puts.count_in(w);
    if (at >= t0 + minutes(116) && at < t0 + minutes(130))
      h2_puts += server_puts.count_in(w);
  }
  std::printf("server-side puts per fault minute: high-1 %.0f, high-2 %.0f "
              "(the paper saw very few log-sync tasks during high-2)\n",
              static_cast<double>(h1_puts) / 8.0,
              static_cast<double>(h2_puts) / 14.0);
  return 0;
}
