// saad_lint — instrumentation static analysis for SAAD-instrumented
// sources: judges what saad_instrument extracts. Runs the rule catalog
// (duplicate templates, stages without log points, dynamic-only templates,
// log points outside stages, unmarked dequeue sites, registry/source
// drift) and reports with fix-it hints, machine-readable JSON, or SARIF
// 2.1.0 for CI ingestion. A checked-in baseline grandfathers existing
// findings so only new ones fail the build.
//
//   saad_lint [options] <files-or-directories...>
//     --format=text|json|sarif   report format on stdout (default text)
//     --output=FILE              write the report to FILE instead of stdout
//     --baseline=FILE            suppress findings recorded in FILE
//     --write-baseline=FILE      write all current findings to FILE, exit 0
//     --registry=FILE            log-template dictionary (from
//                                `saad_offline record --registry=...`);
//                                enables SAAD-RG006 drift checks
//     --dequeue-window=N         SAAD-DQ005 marker distance (default 3)
//     --no-fixits                omit fix-it hints from text output
//
// Exit status: 0 no findings beyond the baseline; 1 new findings; 2 usage
// or I/O error.
#include <cstdio>
#include <fstream>
#include <iterator>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/log_registry.h"
#include "lint/baseline.h"
#include "lint/engine.h"
#include "lint/sarif.h"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: saad_lint [--format=text|json|sarif] [--output=FILE]\n"
      "                 [--baseline=FILE] [--write-baseline=FILE]\n"
      "                 [--registry=FILE] [--dequeue-window=N] "
      "[--no-fixits]\n"
      "                 <files-or-directories...>\n");
  return 2;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream text;
  text << in.rdbuf();
  *out = text.str();
  return true;
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace saad::lint;

  std::string format = "text";
  std::string output_path, baseline_path, write_baseline_path, registry_path;
  bool show_fixits = true;
  RuleOptions options;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json" && format != "sarif")
        return usage();
    } else if (arg.rfind("--output=", 0) == 0) {
      output_path = arg.substr(9);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline_path = arg.substr(17);
    } else if (arg.rfind("--registry=", 0) == 0) {
      registry_path = arg.substr(11);
    } else if (arg.rfind("--dequeue-window=", 0) == 0) {
      // Strict checked parse (the saad_offline.cpp pattern): atoi would
      // silently turn garbage into 0 and accept negative distances.
      const std::string v = arg.substr(17);
      long long parsed = 0;
      bool ok = false;
      try {
        std::size_t used = 0;
        parsed = std::stoll(v, &used);
        ok = used == v.size();
      } catch (const std::exception&) {
      }
      if (!ok || parsed < 0 || parsed > 100000) {
        std::fprintf(stderr,
                     "saad_lint: invalid --dequeue-window=%s (expected an "
                     "integer in [0, 100000])\n",
                     v.c_str());
        return usage();
      }
      options.dequeue_marker_window = static_cast<int>(parsed);
    } else if (arg == "--no-fixits") {
      show_fixits = false;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "saad_lint: unknown option %s\n", arg.c_str());
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage();

  saad::core::LogRegistry registry;
  bool have_registry = false;
  if (!registry_path.empty()) {
    std::string bytes;
    if (!read_file(registry_path, &bytes)) {
      std::fprintf(stderr, "saad_lint: cannot read registry %s\n",
                   registry_path.c_str());
      return 2;
    }
    const auto* data = reinterpret_cast<const std::uint8_t*>(bytes.data());
    if (!registry.load({data, bytes.size()})) {
      std::fprintf(stderr, "saad_lint: malformed registry %s\n",
                   registry_path.c_str());
      return 2;
    }
    have_registry = true;
  }

  std::optional<Baseline> baseline;
  if (!baseline_path.empty()) {
    std::string text;
    if (!read_file(baseline_path, &text)) {
      std::fprintf(stderr, "saad_lint: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    Baseline parsed;
    if (!parse_baseline(text, parsed)) {
      std::fprintf(stderr, "saad_lint: malformed baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    baseline = std::move(parsed);
  }

  const LintRun run =
      run_lint(paths, have_registry ? &registry : nullptr,
               baseline ? &*baseline : nullptr, options);

  if (!write_baseline_path.empty()) {
    const auto serialized = serialize_baseline(make_baseline(run.findings));
    if (!write_file(write_baseline_path, serialized)) {
      std::fprintf(stderr, "saad_lint: cannot write baseline %s\n",
                   write_baseline_path.c_str());
      return 2;
    }
    std::printf("wrote baseline (%zu finding(s)) to %s\n",
                run.findings.size(), write_baseline_path.c_str());
    return 0;
  }

  std::string report;
  if (format == "json") {
    report = to_json(run.fresh);
  } else if (format == "sarif") {
    report = to_sarif(run.fresh);
  } else {
    report = render_text(run, show_fixits);
  }

  if (!output_path.empty()) {
    if (!write_file(output_path, report)) {
      std::fprintf(stderr, "saad_lint: cannot write %s\n",
                   output_path.c_str());
      return 2;
    }
    // Keep the human summary on stdout even when the report goes to a file.
    if (format != "text") std::fputs(render_text(run, false).c_str(), stdout);
  } else {
    std::fputs(report.c_str(), stdout);
  }

  if (!run.errors.empty()) return 2;
  return run.fresh.empty() ? 0 : 1;
}
