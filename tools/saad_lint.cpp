// saad_lint — instrumentation static analysis for SAAD-instrumented
// sources: judges what saad_instrument extracts. Runs the rule catalog
// (duplicate templates, stages without log points, dynamic-only templates,
// log points outside stages, unmarked dequeue sites, registry/source
// drift, plus the CFG-aware flow rules SAAD-FL007..FL010) and reports with
// fix-it hints, machine-readable JSON, or SARIF 2.1.0 for CI ingestion. A
// checked-in baseline grandfathers existing findings so only new ones fail
// the build.
//
//   saad_lint [options] <files-or-directories...>
//     --format=text|json|sarif   report format on stdout (default text)
//     --output=FILE              write the report to FILE instead of stdout
//     --baseline=FILE            suppress findings recorded in FILE
//     --write-baseline=FILE      write all current findings to FILE, exit 0
//     --registry=FILE            log-template dictionary (from
//                                `saad_offline record --registry=...`);
//                                enables SAAD-RG006 drift checks
//     --model=FILE               trained model (`saad_offline train`);
//                                checks static×dynamic signature
//                                conformance (requires --registry)
//     --trace=FILE               synopsis trace; adds its observed
//                                signatures to the conformance check
//     --emit-graph=dot|json      write the stage-flow graphs instead of the
//                                lint report
//     --graph-out=FILE           destination for --emit-graph (default
//                                stdout)
//     --dequeue-window=N         SAAD-DQ005 marker distance (default 3)
//     --no-fixits                omit fix-it hints from text output
//
// Exit status: 0 no findings beyond the baseline; 1 new findings or a
// statically impossible trained signature; 2 usage or I/O error.
#include <cstdio>
#include <fstream>
#include <iterator>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/log_registry.h"
#include "core/model.h"
#include "core/trace_io.h"
#include "flow/conformance.h"
#include "flow/graph_export.h"
#include "lint/baseline.h"
#include "lint/engine.h"
#include "lint/sarif.h"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: saad_lint [--format=text|json|sarif] [--output=FILE]\n"
      "                 [--baseline=FILE] [--write-baseline=FILE]\n"
      "                 [--registry=FILE] [--model=FILE] [--trace=FILE]\n"
      "                 [--emit-graph=dot|json] [--graph-out=FILE]\n"
      "                 [--dequeue-window=N] [--no-fixits]\n"
      "                 <files-or-directories...>\n");
  return 2;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream text;
  text << in.rdbuf();
  *out = text.str();
  return true;
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace saad::lint;

  std::string format = "text";
  std::string output_path, baseline_path, write_baseline_path, registry_path;
  std::string model_path, trace_path, emit_graph, graph_out_path;
  bool show_fixits = true;
  RuleOptions options;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json" && format != "sarif")
        return usage();
    } else if (arg.rfind("--output=", 0) == 0) {
      output_path = arg.substr(9);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline_path = arg.substr(17);
    } else if (arg.rfind("--registry=", 0) == 0) {
      registry_path = arg.substr(11);
    } else if (arg.rfind("--model=", 0) == 0) {
      model_path = arg.substr(8);
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    } else if (arg.rfind("--emit-graph=", 0) == 0) {
      emit_graph = arg.substr(13);
      if (emit_graph != "dot" && emit_graph != "json") return usage();
    } else if (arg.rfind("--graph-out=", 0) == 0) {
      graph_out_path = arg.substr(12);
    } else if (arg.rfind("--dequeue-window=", 0) == 0) {
      // Strict checked parse (the saad_offline.cpp pattern): atoi would
      // silently turn garbage into 0 and accept negative distances.
      const std::string v = arg.substr(17);
      long long parsed = 0;
      bool ok = false;
      try {
        std::size_t used = 0;
        parsed = std::stoll(v, &used);
        ok = used == v.size();
      } catch (const std::exception&) {
      }
      if (!ok || parsed < 0 || parsed > 100000) {
        std::fprintf(stderr,
                     "saad_lint: invalid --dequeue-window=%s (expected an "
                     "integer in [0, 100000])\n",
                     v.c_str());
        return usage();
      }
      options.dequeue_marker_window = static_cast<int>(parsed);
    } else if (arg == "--no-fixits") {
      show_fixits = false;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "saad_lint: unknown option %s\n", arg.c_str());
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage();
  if (!model_path.empty() && registry_path.empty()) {
    std::fprintf(stderr, "saad_lint: --model requires --registry\n");
    return usage();
  }
  if (!trace_path.empty() && model_path.empty()) {
    std::fprintf(stderr, "saad_lint: --trace requires --model\n");
    return usage();
  }

  saad::core::LogRegistry registry;
  bool have_registry = false;
  if (!registry_path.empty()) {
    std::string bytes;
    if (!read_file(registry_path, &bytes)) {
      std::fprintf(stderr, "saad_lint: cannot read registry %s\n",
                   registry_path.c_str());
      return 2;
    }
    const auto* data = reinterpret_cast<const std::uint8_t*>(bytes.data());
    if (!registry.load({data, bytes.size()})) {
      std::fprintf(stderr, "saad_lint: malformed registry %s\n",
                   registry_path.c_str());
      return 2;
    }
    have_registry = true;
  }

  std::optional<Baseline> baseline;
  if (!baseline_path.empty()) {
    std::string text;
    if (!read_file(baseline_path, &text)) {
      std::fprintf(stderr, "saad_lint: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    Baseline parsed;
    if (!parse_baseline(text, parsed)) {
      std::fprintf(stderr, "saad_lint: malformed baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    baseline = std::move(parsed);
  }

  std::optional<saad::core::OutlierModel> model;
  if (!model_path.empty()) {
    std::string bytes;
    if (!read_file(model_path, &bytes)) {
      std::fprintf(stderr, "saad_lint: cannot read model %s\n",
                   model_path.c_str());
      return 2;
    }
    const auto* data = reinterpret_cast<const std::uint8_t*>(bytes.data());
    model = saad::core::OutlierModel::load({data, bytes.size()});
    if (!model) {
      std::fprintf(stderr, "saad_lint: malformed model %s\n",
                   model_path.c_str());
      return 2;
    }
  }
  std::optional<std::vector<saad::core::Synopsis>> trace;
  if (!trace_path.empty()) {
    trace = saad::core::read_trace_file(trace_path);
    if (!trace) {
      std::fprintf(stderr, "saad_lint: cannot read trace %s\n",
                   trace_path.c_str());
      return 2;
    }
  }

  const LintRun run =
      run_lint(paths, have_registry ? &registry : nullptr,
               baseline ? &*baseline : nullptr, options);

  if (!emit_graph.empty()) {
    const std::string graph = emit_graph == "dot"
                                  ? saad::flow::to_dot(run.flows)
                                  : saad::flow::to_json(run.flows);
    if (!graph_out_path.empty()) {
      if (!write_file(graph_out_path, graph)) {
        std::fprintf(stderr, "saad_lint: cannot write %s\n",
                     graph_out_path.c_str());
        return 2;
      }
      std::printf("wrote %zu stage-flow graph(s) to %s\n", run.flows.size(),
                  graph_out_path.c_str());
    } else {
      std::fputs(graph.c_str(), stdout);
    }
    return run.errors.empty() ? 0 : 2;
  }

  if (!write_baseline_path.empty()) {
    const auto serialized = serialize_baseline(make_baseline(run.findings));
    if (!write_file(write_baseline_path, serialized)) {
      std::fprintf(stderr, "saad_lint: cannot write baseline %s\n",
                   write_baseline_path.c_str());
      return 2;
    }
    std::printf("wrote baseline (%zu finding(s)) to %s\n",
                run.findings.size(), write_baseline_path.c_str());
    return 0;
  }

  std::string report;
  if (format == "json") {
    report = to_json(run.fresh);
  } else if (format == "sarif") {
    report = to_sarif(run.fresh);
  } else {
    report = render_text(run, show_fixits);
  }

  if (!output_path.empty()) {
    if (!write_file(output_path, report)) {
      std::fprintf(stderr, "saad_lint: cannot write %s\n",
                   output_path.c_str());
      return 2;
    }
    // Keep the human summary on stdout even when the report goes to a file.
    if (format != "text") std::fputs(render_text(run, false).c_str(), stdout);
  } else {
    std::fputs(report.c_str(), stdout);
  }

  bool conformance_drift = false;
  if (model) {
    const auto conformance = saad::flow::check_conformance(
        run.flows, registry, *model, trace ? &*trace : nullptr);
    std::fputs(saad::flow::render_conformance(conformance).c_str(), stdout);
    conformance_drift = conformance.impossible_total > 0;
  }

  if (!run.errors.empty()) return 2;
  return run.fresh.empty() && !conformance_drift ? 0 : 1;
}
