// saad_stats — terminal viewer and validator for SAAD telemetry snapshots
// (the Prometheus text files written by `saad_offline --metrics-out=` or
// obs::write_prometheus_file).
//
//   saad_stats metrics.prom                render a metric table
//   saad_stats metrics.prom --check        strict format validation: sample
//                                          grammar, metric-name charset,
//                                          TYPE presence, histogram bucket
//                                          cumulativity and +Inf terminals
//   saad_stats metrics.prom --require=F    fail unless family F is present
//                                          (repeatable; comma-separates;
//                                          a trailing '*' or '_' makes it a
//                                          prefix pattern, e.g.
//                                          --require=saad_span_,saad_http_)
//   saad_stats metrics.prom --follow[=ms]  re-render whenever the file
//                                          changes (poll interval, default
//                                          1000 ms)
//   saad_stats --url=http://H:P/metrics    scrape a live admin plane
//                                          (saad_offline serve --admin-port)
//                                          instead of reading a file; all of
//                                          --check/--require/--follow work
//                                          against the scraped text
//   saad_stats --url=... --raw             print the fetched body verbatim
//                                          (for /statusz, /spans, /healthz)
//
// Exit codes: 0 ok, 1 cannot read input or fetch the URL, 2 usage, 3
// validation or --require failure. `-` reads stdin (single shot only).
#include <netdb.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/table.h"

namespace {

struct Sample {
  std::string name;  // full sample name, e.g. saad_detector_window_close_us_bucket
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;
  std::size_t line = 0;  // 1-based source line, for diagnostics
};

struct Family {
  std::string name;
  std::string help;
  std::string type;  // counter | gauge | histogram | untyped | ...
  std::vector<Sample> samples;
};

struct Exposition {
  std::vector<Family> families;  // in file order
  std::vector<std::string> errors;

  Family* find(const std::string& name) {
    for (auto& family : families)
      if (family.name == name) return &family;
    return nullptr;
  }
};

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_' &&
      name[0] != ':')
    return false;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != ':')
      return false;
  }
  return true;
}

bool valid_label_name(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_')
    return false;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

/// The family a sample belongs to: histogram samples drop the _bucket /
/// _sum / _count suffix when such a family exists.
std::string base_name(const Exposition& exposition, const std::string& name) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string s = suffix;
    if (name.size() > s.size() &&
        name.compare(name.size() - s.size(), s.size(), s) == 0) {
      const std::string base = name.substr(0, name.size() - s.size());
      for (const auto& family : exposition.families) {
        if (family.name == base && family.type == "histogram") return base;
      }
    }
  }
  return name;
}

std::optional<double> parse_value(const std::string& text) {
  if (text == "+Inf" || text == "Inf") return HUGE_VAL;
  if (text == "-Inf") return -HUGE_VAL;
  if (text == "NaN") return NAN;
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used == text.size()) return v;
  } catch (const std::exception&) {
  }
  return std::nullopt;
}

/// Parses `name{label="value",...} value` after the name has been consumed.
/// Returns false (with a message) on any grammar violation.
bool parse_labels(const std::string& body, std::size_t& pos, Sample& sample,
                  std::string& error) {
  ++pos;  // consume '{'
  for (;;) {
    while (pos < body.size() && body[pos] == ' ') ++pos;
    if (pos < body.size() && body[pos] == '}') {
      ++pos;
      return true;
    }
    std::size_t eq = body.find('=', pos);
    if (eq == std::string::npos) {
      error = "unterminated label list";
      return false;
    }
    std::string label_name = body.substr(pos, eq - pos);
    if (!valid_label_name(label_name)) {
      error = "invalid label name '" + label_name + "'";
      return false;
    }
    pos = eq + 1;
    if (pos >= body.size() || body[pos] != '"') {
      error = "label value for '" + label_name + "' is not quoted";
      return false;
    }
    ++pos;
    std::string value;
    for (;;) {
      if (pos >= body.size()) {
        error = "unterminated label value for '" + label_name + "'";
        return false;
      }
      const char c = body[pos++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos >= body.size()) {
          error = "dangling escape in label value for '" + label_name + "'";
          return false;
        }
        const char esc = body[pos++];
        if (esc == 'n')
          value.push_back('\n');
        else if (esc == '\\' || esc == '"')
          value.push_back(esc);
        else {
          error = std::string("invalid escape '\\") + esc +
                  "' in label value for '" + label_name + "'";
          return false;
        }
      } else {
        value.push_back(c);
      }
    }
    sample.labels.emplace_back(std::move(label_name), std::move(value));
    if (pos < body.size() && body[pos] == ',') ++pos;
  }
}

Exposition parse_exposition(std::istream& in) {
  Exposition out;
  std::string line;
  std::size_t line_no = 0;
  auto fail = [&](const std::string& message) {
    out.errors.push_back("line " + std::to_string(line_no) + ": " + message);
  };
  // Families announced by # TYPE; samples attach by base name. A sample
  // before any TYPE still parses (Prometheus allows untyped), but --check
  // flags it below.
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream meta(line);
      std::string hash, keyword, name;
      meta >> hash >> keyword >> name;
      if (keyword != "HELP" && keyword != "TYPE") continue;  // comment
      if (!valid_metric_name(name)) {
        fail("invalid metric name '" + name + "' in # " + keyword);
        continue;
      }
      std::string rest;
      std::getline(meta, rest);
      if (!rest.empty() && rest[0] == ' ') rest.erase(0, 1);
      Family* family = out.find(name);
      if (family == nullptr) {
        out.families.push_back(Family{name, "", "", {}});
        family = &out.families.back();
      }
      if (keyword == "HELP") {
        family->help = rest;
      } else {
        if (!family->type.empty())
          fail("duplicate # TYPE for '" + name + "'");
        family->type = rest;
      }
      continue;
    }

    // Sample line: name[{labels}] value
    std::size_t pos = 0;
    while (pos < line.size() && line[pos] != '{' && line[pos] != ' ') ++pos;
    Sample sample;
    sample.name = line.substr(0, pos);
    sample.line = line_no;
    if (!valid_metric_name(sample.name)) {
      fail("invalid sample name '" + sample.name + "'");
      continue;
    }
    if (pos < line.size() && line[pos] == '{') {
      std::string error;
      if (!parse_labels(line, pos, sample, error)) {
        fail(sample.name + ": " + error);
        continue;
      }
    }
    while (pos < line.size() && line[pos] == ' ') ++pos;
    // Value runs to the next space (an optional timestamp may follow).
    std::size_t value_end = line.find(' ', pos);
    if (value_end == std::string::npos) value_end = line.size();
    const auto value = parse_value(line.substr(pos, value_end - pos));
    if (!value) {
      fail(sample.name + ": unparseable value '" +
           line.substr(pos, value_end - pos) + "'");
      continue;
    }
    sample.value = *value;

    const std::string base = base_name(out, sample.name);
    Family* family = out.find(base);
    if (family == nullptr) {
      out.families.push_back(Family{base, "", "", {}});
      family = &out.families.back();
    }
    family->samples.push_back(std::move(sample));
  }
  return out;
}

// ---- Validation (--check) --------------------------------------------------

std::string label_key_without_le(const Sample& sample) {
  std::string key;
  for (const auto& [name, value] : sample.labels) {
    if (name == "le") continue;
    key += name + "=" + value + ",";
  }
  return key;
}

/// Histogram invariants per series: buckets cumulative and non-decreasing in
/// file order, terminated by le="+Inf", and _count equal to the +Inf bucket.
void check_histogram(const Family& family, std::vector<std::string>& errors) {
  struct SeriesState {
    double last_bucket = -1.0;
    double last_le = -HUGE_VAL;
    bool saw_inf = false;
    double inf_count = 0.0;
    std::optional<double> count;
  };
  std::map<std::string, SeriesState> series;
  for (const auto& sample : family.samples) {
    auto& state = series[label_key_without_le(sample)];
    if (sample.name == family.name + "_bucket") {
      std::optional<double> le;
      for (const auto& [name, value] : sample.labels)
        if (name == "le") le = parse_value(value);
      if (!le) {
        errors.push_back(family.name + ": _bucket sample at line " +
                         std::to_string(sample.line) +
                         " lacks a numeric 'le' label");
        continue;
      }
      if (*le <= state.last_le) {
        errors.push_back(family.name + ": bucket le=" + std::to_string(*le) +
                         " out of order at line " + std::to_string(sample.line));
      }
      if (sample.value + 1e-9 < state.last_bucket) {
        errors.push_back(family.name +
                         ": bucket counts not cumulative at line " +
                         std::to_string(sample.line));
      }
      state.last_le = *le;
      state.last_bucket = sample.value;
      if (std::isinf(*le) && *le > 0) {
        state.saw_inf = true;
        state.inf_count = sample.value;
      }
    } else if (sample.name == family.name + "_count") {
      state.count = sample.value;
    }
  }
  for (const auto& [key, state] : series) {
    const std::string where =
        key.empty() ? family.name : family.name + "{" + key + "}";
    if (!state.saw_inf)
      errors.push_back(where + ": histogram series lacks an le=\"+Inf\" bucket");
    if (state.count && state.saw_inf && *state.count != state.inf_count)
      errors.push_back(where + ": _count does not equal the +Inf bucket");
  }
}

std::vector<std::string> check_exposition(const Exposition& exposition) {
  std::vector<std::string> errors = exposition.errors;
  for (const auto& family : exposition.families) {
    if (family.type.empty()) {
      errors.push_back(family.name + ": no # TYPE line");
      continue;
    }
    if (family.type != "counter" && family.type != "gauge" &&
        family.type != "histogram" && family.type != "summary" &&
        family.type != "untyped") {
      errors.push_back(family.name + ": unknown type '" + family.type + "'");
      continue;
    }
    if (family.type == "histogram") check_histogram(family, errors);
  }
  return errors;
}

// ---- Rendering -------------------------------------------------------------

std::string format_labels(const Sample& sample) {
  std::string out;
  for (const auto& [name, value] : sample.labels) {
    if (name == "le") continue;
    if (!out.empty()) out += ",";
    out += name + "=" + value;
  }
  return out;
}

std::string format_value(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    return saad::TextTable::num(static_cast<std::int64_t>(v));
  }
  return saad::TextTable::num(v, 3);
}

/// Estimated quantile from cumulative buckets (linear within a bucket, the
/// standard Prometheus histogram_quantile estimate).
std::optional<double> histogram_quantile(
    const std::vector<std::pair<double, double>>& buckets, double q) {
  if (buckets.empty()) return std::nullopt;
  const double total = buckets.back().second;
  if (total <= 0) return std::nullopt;
  const double rank = q * total;
  double lower = 0.0, lower_count = 0.0;
  for (const auto& [le, count] : buckets) {
    if (count >= rank) {
      if (std::isinf(le)) return lower;  // open-ended: report lower bound
      if (count == lower_count) return le;
      return lower + (le - lower) * (rank - lower_count) / (count - lower_count);
    }
    lower = le;
    lower_count = count;
  }
  return buckets.back().first;
}

std::string render_table(const Exposition& exposition) {
  saad::TextTable table({"metric", "labels", "value"});
  for (const auto& family : exposition.families) {
    if (family.type == "histogram") {
      // One row per series: count, sum, and a p50/p99 estimate.
      std::map<std::string, std::vector<std::pair<double, double>>> buckets;
      std::map<std::string, double> counts, sums;
      for (const auto& sample : family.samples) {
        const std::string key = format_labels(sample);
        if (sample.name == family.name + "_bucket") {
          double le = 0;
          for (const auto& [name, value] : sample.labels)
            if (name == "le") le = parse_value(value).value_or(0);
          buckets[key].emplace_back(le, sample.value);
        } else if (sample.name == family.name + "_count") {
          counts[key] = sample.value;
        } else if (sample.name == family.name + "_sum") {
          sums[key] = sample.value;
        }
      }
      for (const auto& [key, series_buckets] : buckets) {
        const double count = counts.count(key) ? counts[key] : 0;
        std::string value = "count " + format_value(count) + ", sum " +
                            format_value(sums.count(key) ? sums[key] : 0);
        if (const auto p50 = histogram_quantile(series_buckets, 0.5))
          value += ", p50 ~" + format_value(*p50);
        if (const auto p99 = histogram_quantile(series_buckets, 0.99))
          value += ", p99 ~" + format_value(*p99);
        table.add_row({family.name, key, value});
      }
    } else {
      for (const auto& sample : family.samples)
        table.add_row(
            {sample.name, format_labels(sample), format_value(sample.value)});
    }
  }
  return table.to_string();
}

// ---- Live scrape (--url) ---------------------------------------------------

// Minimal HTTP/1.0 GET: the admin plane answers every request with
// `Connection: close`, so read-to-EOF delimits the body (Content-Length is
// advisory). Only http:// is supported; 5s connect/send/receive timeouts.
std::optional<std::string> http_get(const std::string& url,
                                    std::string& error) {
  if (url.rfind("http://", 0) != 0) {
    error = "only http:// URLs are supported";
    return std::nullopt;
  }
  const std::string rest = url.substr(7);
  const std::size_t slash = rest.find('/');
  const std::string hostport =
      slash == std::string::npos ? rest : rest.substr(0, slash);
  const std::string target =
      slash == std::string::npos ? "/" : rest.substr(slash);
  const std::size_t colon = hostport.rfind(':');
  const std::string host =
      colon == std::string::npos ? hostport : hostport.substr(0, colon);
  const std::string port =
      colon == std::string::npos ? "80" : hostport.substr(colon + 1);
  if (host.empty() || port.empty()) {
    error = "malformed host:port in " + url;
    return std::nullopt;
  }

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (getaddrinfo(host.c_str(), port.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    error = "cannot resolve " + hostport;
    return std::nullopt;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    timeval tv{5, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  freeaddrinfo(res);
  if (fd < 0) {
    error = "cannot connect to " + hostport;
    return std::nullopt;
  }

  const std::string request = "GET " + target + " HTTP/1.0\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t w = ::write(fd, request.data() + off, request.size() - off);
    if (w <= 0) {
      ::close(fd);
      error = "send failed to " + hostport;
      return std::nullopt;
    }
    off += static_cast<std::size_t>(w);
  }

  std::string response;
  char buf[16 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      response.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF or timeout: the body is close-delimited
  }
  ::close(fd);

  // "HTTP/1.x NNN ..." then headers then the body.
  if (response.rfind("HTTP/1.", 0) != 0 || response.size() < 12) {
    error = "malformed HTTP response from " + hostport;
    return std::nullopt;
  }
  const std::string status = response.substr(9, 3);
  std::size_t body = response.find("\r\n\r\n");
  std::size_t skip = 4;
  if (body == std::string::npos) {
    body = response.find("\n\n");
    skip = 2;
  }
  if (body == std::string::npos) {
    error = "response from " + hostport + " has no header terminator";
    return std::nullopt;
  }
  if (status != "200") {
    error = "HTTP " + status + " from " + url;
    return std::nullopt;
  }
  return response.substr(body + skip);
}

// ---- Driver ----------------------------------------------------------------

struct Args {
  std::string path;
  std::string url;  // scrape instead of reading path
  bool check = false;
  bool raw = false;
  bool follow = false;
  long long follow_ms = 1000;
  std::vector<std::string> require;
  bool usage_error = false;
};

/// True when the exposition satisfies one --require entry: exact family
/// name, or — when the pattern ends in '*' or '_' — any family with that
/// prefix ('saad_span_' and 'saad_span_*' are equivalent).
bool require_satisfied(Exposition& exposition, const std::string& pattern) {
  if (!pattern.empty() && (pattern.back() == '*' || pattern.back() == '_')) {
    std::string prefix = pattern;
    if (prefix.back() == '*') prefix.pop_back();
    for (const auto& family : exposition.families)
      if (family.name.rfind(prefix, 0) == 0) return true;
    return false;
  }
  return exposition.find(pattern) != nullptr;
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      args.check = true;
    } else if (arg == "--follow") {
      args.follow = true;
    } else if (arg.rfind("--follow=", 0) == 0) {
      args.follow = true;
      const std::string value = arg.substr(9);
      try {
        std::size_t used = 0;
        args.follow_ms = std::stoll(value, &used);
        if (used != value.size()) args.usage_error = true;
      } catch (const std::exception&) {
        args.usage_error = true;
      }
      if (!args.usage_error &&
          (args.follow_ms < 10 || args.follow_ms > 3600000)) {
        std::fprintf(stderr,
                     "saad_stats: --follow interval must be 10..3600000 ms\n");
        args.usage_error = true;
      }
    } else if (arg.rfind("--require=", 0) == 0) {
      // Comma-separated list; each entry is an exact name or a prefix
      // pattern (trailing '*' or '_').
      const std::string list = arg.substr(10);
      std::size_t start = 0;
      for (;;) {
        const std::size_t comma = list.find(',', start);
        const std::string item =
            list.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        if (!item.empty()) args.require.push_back(item);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (arg.rfind("--url=", 0) == 0) {
      args.url = arg.substr(6);
    } else if (arg == "--raw") {
      args.raw = true;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      args.usage_error = true;
    } else if (args.path.empty()) {
      args.path = arg;
    } else {
      args.usage_error = true;
    }
  }
  if (args.path.empty() == args.url.empty())
    args.usage_error = true;  // exactly one input source
  if (args.raw && args.url.empty()) args.usage_error = true;
  return args;
}

int run_once(const Args& args) {
  Exposition exposition;
  if (!args.url.empty()) {
    std::string error;
    const auto body = http_get(args.url, error);
    if (!body) {
      std::fprintf(stderr, "saad_stats: %s\n", error.c_str());
      return 1;
    }
    if (args.raw) {
      std::fwrite(body->data(), 1, body->size(), stdout);
      std::fflush(stdout);
      return 0;
    }
    std::istringstream in(*body);
    exposition = parse_exposition(in);
  } else if (args.path == "-") {
    exposition = parse_exposition(std::cin);
  } else {
    std::ifstream file(args.path);
    if (!file) {
      std::fprintf(stderr, "saad_stats: cannot read %s\n", args.path.c_str());
      return 1;
    }
    exposition = parse_exposition(file);
  }

  int rc = 0;
  if (args.check) {
    const auto errors = check_exposition(exposition);
    for (const auto& error : errors)
      std::fprintf(stderr, "saad_stats: check: %s\n", error.c_str());
    if (!errors.empty()) rc = 3;
  } else {
    for (const auto& error : exposition.errors)
      std::fprintf(stderr, "saad_stats: %s\n", error.c_str());
    if (!exposition.errors.empty()) rc = 3;
  }
  for (const auto& pattern : args.require) {
    if (!require_satisfied(exposition, pattern)) {
      std::fprintf(stderr, "saad_stats: no family matching required '%s'\n",
                   pattern.c_str());
      rc = 3;
    }
  }
  std::printf("%s", render_table(exposition).c_str());
  if (rc == 0 && args.check)
    std::printf("check: OK (%zu families)\n", exposition.families.size());
  std::fflush(stdout);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.usage_error) {
    std::fprintf(stderr,
                 "usage: saad_stats <metrics.prom|-|--url=http://H:P/path> "
                 "[--check] [--require=<family[,family]...>]... [--raw] "
                 "[--follow[=ms]]\n");
    return 2;
  }
  if (!args.follow || args.path == "-") return run_once(args);

  if (!args.url.empty()) {
    // Live tail: re-scrape every interval, re-render when the body moved.
    // A failed scrape (server restarting) is retried on the next tick.
    std::string last_body;
    for (;;) {
      std::string error;
      if (const auto body = http_get(args.url, error); body &&
          *body != last_body) {
        last_body = *body;
        std::printf("\n=== %s ===\n", args.url.c_str());
        if (args.raw) {
          std::fwrite(body->data(), 1, body->size(), stdout);
          std::fflush(stdout);
        } else {
          Args once = args;
          once.follow = false;
          run_once(once);
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(args.follow_ms));
    }
  }

  // Tail mode: re-render whenever the snapshot file's mtime or size moves.
  struct stat last {};
  for (;;) {
    struct stat now {};
    const bool changed = stat(args.path.c_str(), &now) == 0 &&
                         (now.st_mtime != last.st_mtime ||
                          now.st_size != last.st_size);
    if (changed) {
      last = now;
      std::printf("\n=== %s ===\n", args.path.c_str());
      run_once(args);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(args.follow_ms));
  }
}
