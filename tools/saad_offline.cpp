// saad_offline — command-line front end for the train-offline /
// detect-offline workflow on synopsis trace files.
//
//   record  run a simulated cluster, stream the synopsis trace to disk
//           (crash-safe v2 framing) + the log template dictionary (and
//           optionally inject a fault)
//   train   build an outlier model from a fault-free trace
//   detect  replay a trace against a model; print anomalies, optionally
//           write a self-contained HTML report
//   info    summarize a trace file, including per-block integrity
//   serve   run the analyzer as a long-lived network service: accept
//           SAADNET1 connections (net/server.h) and detect on the live
//           synopsis stream. With --checkpoint-dir the serving state
//           (model, registry, open windows, verdicts) checkpoints on
//           window close and on session end, and a restart with the same
//           flag resumes from the newest valid checkpoint; SIGHUP re-reads
//           --model and hot-swaps it at the next window boundary without
//           dropping client connections
//   replay  stream a recorded trace to a running `serve` over TCP at
//           recorded or accelerated pacing (net/client.h); --skip/--limit
//           select a synopsis range (for staged/crash-restart runs)
//
// train/detect/info stream the trace through TraceReader block by block
// (v1 and v2), so damaged files degrade to a warning about skipped blocks
// or a torn tail instead of a hard failure.
//
// Example session:
//   saad_offline record --system=cassandra --minutes=6
//       --trace=clean.trc --registry=reg.bin
//   saad_offline train  --trace=clean.trc --model=model.bin
//   saad_offline record --system=cassandra --minutes=6 --fault=error-wal
//       --trace=faulty.trc --registry=reg.bin
//   saad_offline detect --trace=faulty.trc --model=model.bin
//       --registry=reg.bin --html=report.html
// (each command is a single line; wrapped here for readability)
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>

#include "common/table.h"
#include "core/analyzer_pool.h"
#include "core/checkpoint.h"
#include "core/report_html.h"
#include "core/saad.h"
#include "core/telemetry.h"
#include "core/trace_io.h"
#include "net/client.h"
#include "net/http.h"
#include "net/server.h"
#include "obs/exposition.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "systems/cassandra/cassandra.h"
#include "systems/hbase/hbase.h"
#include "workload/ycsb.h"

namespace {

using namespace saad;

struct Args {
  std::string command;
  std::string trace, model, registry, html, system = "cassandra";
  std::string fault;
  std::string metrics_out;  // Prometheus text snapshot written on exit
  bool stats = false;       // detect/serve: live per-window summaries
  long long run_minutes = 6;
  long long window_sec = 60;
  long long threads = 1;  // analyzer threads for detect/serve (0 = all cores)
  std::uint64_t seed = 1;
  // serve
  long long listen = -1;      // TCP port (0 = ephemeral); -1 = not given
  std::string port_file;      // write the bound port here (for scripts)
  bool once = false;          // exit after the first completed session
  std::string checkpoint_dir;      // warm-restart checkpoints (core/checkpoint.h)
  long long checkpoint_every = 1;  // checkpoint every N window-close barriers
  long long admin_port = -1;       // admin HTTP plane (0 = ephemeral); -1 = off
  std::string admin_port_file;     // write the bound admin port here
  std::string trace_out;           // Chrome trace JSON of sampled spans on exit
  long long span_every = 64;       // span sample rate (1 in N batches)
  // replay
  std::string connect;        // HOST:PORT of a running `serve`
  std::string pace = "fast";  // fast | recorded
  long long speed = 1;        // recorded-pacing acceleration factor
  long long batch = 256;      // synopses per batch frame
  long long retries = 10;     // delivery attempts for the final flush
  std::string spool_trace;    // client spill fallback (trace v2)
  long long skip = 0;         // synopses to skip from the trace head
  long long limit = -1;       // max synopses to stream (-1 = all)
};

long long parse_int(const std::string& v, const char* key) {
  try {
    std::size_t used = 0;
    const long long parsed = std::stoll(v, &used);
    if (used == v.size()) return parsed;
  } catch (const std::exception&) {
  }
  std::fprintf(stderr, "invalid --%s=%s (expected an integer)\n", key,
               v.c_str());
  std::exit(2);
}

// Integer option with a closed range enforced at parse time: an out-of-range
// value is a usage error (exit 2), never a silent clamp.
constexpr long long kMaxCount = 1'000'000'000'000LL;  // --skip/--limit ceiling

long long parse_int_range(const std::string& v, const char* key, long long lo,
                          long long hi) {
  const long long parsed = parse_int(v, key);
  if (parsed < lo || parsed > hi) {
    std::fprintf(stderr, "invalid --%s=%s (expected %lld..%lld)\n", key,
                 v.c_str(), lo, hi);
    std::exit(2);
  }
  return parsed;
}

Args parse(int argc, char** argv) {
  Args args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* key) -> std::string {
      const std::string prefix = std::string("--") + key + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return {};
    };
    if (auto v = value("trace"); !v.empty()) args.trace = v;
    if (auto v = value("model"); !v.empty()) args.model = v;
    if (auto v = value("registry"); !v.empty()) args.registry = v;
    if (auto v = value("html"); !v.empty()) args.html = v;
    if (auto v = value("system"); !v.empty()) args.system = v;
    if (auto v = value("fault"); !v.empty()) args.fault = v;
    if (auto v = value("metrics-out"); !v.empty()) args.metrics_out = v;
    if (arg == "--stats") args.stats = true;
    if (auto v = value("minutes"); !v.empty())
      args.run_minutes = parse_int_range(v, "minutes", 1, 7 * 24 * 60);
    if (auto v = value("window-sec"); !v.empty())
      args.window_sec = parse_int_range(v, "window-sec", 1, 86400);
    if (auto v = value("threads"); !v.empty())
      args.threads = parse_int_range(v, "threads", 0, 1024);
    if (auto v = value("seed"); !v.empty())
      args.seed = static_cast<std::uint64_t>(parse_int(v, "seed"));
    if (auto v = value("listen"); !v.empty())
      args.listen = parse_int_range(v, "listen", 0, 65535);
    if (auto v = value("port-file"); !v.empty()) args.port_file = v;
    if (arg == "--once") args.once = true;
    if (auto v = value("checkpoint-dir"); !v.empty()) args.checkpoint_dir = v;
    if (auto v = value("checkpoint-every"); !v.empty())
      args.checkpoint_every =
          parse_int_range(v, "checkpoint-every", 1, 1'000'000'000);
    if (auto v = value("admin-port"); !v.empty())
      args.admin_port = parse_int_range(v, "admin-port", 0, 65535);
    if (auto v = value("admin-port-file"); !v.empty()) args.admin_port_file = v;
    if (auto v = value("trace-out"); !v.empty()) args.trace_out = v;
    if (auto v = value("span-every"); !v.empty())
      args.span_every = parse_int_range(v, "span-every", 1, 1'000'000'000);
    if (auto v = value("skip"); !v.empty())
      args.skip = parse_int_range(v, "skip", 0, kMaxCount);
    if (auto v = value("limit"); !v.empty())
      args.limit = parse_int_range(v, "limit", -1, kMaxCount);
    if (auto v = value("connect"); !v.empty()) args.connect = v;
    if (auto v = value("pace"); !v.empty()) args.pace = v;
    if (auto v = value("speed"); !v.empty())
      args.speed = parse_int_range(v, "speed", 1, 1'000'000);
    if (auto v = value("batch"); !v.empty())
      args.batch = parse_int_range(v, "batch", 1, 1'000'000);
    if (auto v = value("retries"); !v.empty())
      args.retries = parse_int_range(v, "retries", 1, 1'000'000);
    if (auto v = value("spool-trace"); !v.empty()) args.spool_trace = v;
  }
  return args;
}

bool write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(file);
}

std::optional<std::vector<std::uint8_t>> read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return std::nullopt;
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(file)),
                                   std::istreambuf_iterator<char>());
}

// Live per-window summary for `detect --stats`: one line per closed window,
// printed while the trace is still streaming. Windows close at a watermark
// two windows behind the newest synopsis end time, so ordinary out-of-order
// arrivals (long tasks finishing late) still land in their own window rather
// than being reattributed to the oldest open one.
//
// `serve --checkpoint-dir` reuses the watermark/close-cursor bookkeeping to
// drive progressive window closes (checkpoints happen at close barriers)
// with print=false, so checkpointing does not change what reaches stdout.
class LiveStats {
 public:
  explicit LiveStats(UsTime window, bool print = true)
      : window_(window), print_(print) {}

  /// Resume after a checkpoint restore: windows below `next` are already
  /// closed (their verdicts came back with the checkpoint) and must be
  /// neither closed again nor reported.
  void resume_from(std::size_t next) {
    next_window_ = std::max(next_window_, next);
  }

  void note(const core::Synopsis& s) {
    watermark_ = std::max(watermark_, s.start + s.duration);
    const auto w =
        static_cast<std::size_t>(std::max<UsTime>(s.start, 0) / window_);
    synopses_[std::max(w, next_window_)]++;
  }

  void absorb(const std::vector<core::Anomaly>& batch) {
    for (const auto& a : batch) {
      auto& [flow, perf] = anomalies_[a.window];
      (a.kind == core::AnomalyKind::kFlow ? flow : perf)++;
    }
  }

  /// Watermark the analyzer can safely advance to (0 while warming up).
  UsTime safe_now() const {
    return watermark_ > 2 * window_ ? watermark_ - 2 * window_ : 0;
  }

  /// True once `safe` closes a window not yet reported. Gates advance_to():
  /// in the threaded pool it is a full flush + merge barrier, so it should
  /// run once per window, not once per synopsis.
  bool window_ready(UsTime safe) const {
    return static_cast<UsTime>(next_window_ + 1) * window_ <= safe;
  }

  /// Prints a line for every window whose end is <= `now`.
  void report_until(UsTime now) {
    while (static_cast<UsTime>(next_window_ + 1) * window_ <= now) {
      print_window(next_window_);
      ++next_window_;
    }
  }

  /// Prints every window still pending (after analyzer.finish()).
  void report_rest() {
    std::size_t last = next_window_;
    if (!synopses_.empty()) last = std::max(last, synopses_.rbegin()->first);
    if (!anomalies_.empty()) last = std::max(last, anomalies_.rbegin()->first);
    for (; next_window_ <= last; ++next_window_) print_window(next_window_);
  }

 private:
  void print_window(std::size_t w) {
    std::size_t n = 0, flow = 0, perf = 0;
    if (auto it = synopses_.find(w); it != synopses_.end()) {
      n = it->second;
      synopses_.erase(it);
    }
    if (auto it = anomalies_.find(w); it != anomalies_.end()) {
      flow = it->second.first;
      perf = it->second.second;
      anomalies_.erase(it);
    }
    if (!print_) return;
    std::printf("[stats] window %3zu [%5.1f, %5.1f min): %6zu synopses, "
                "%zu anomalies (%zu flow, %zu performance)\n",
                w, to_min(static_cast<UsTime>(w) * window_),
                to_min(static_cast<UsTime>(w + 1) * window_), n, flow + perf,
                flow, perf);
    std::fflush(stdout);
  }

  UsTime window_;
  bool print_;
  UsTime watermark_ = 0;
  std::size_t next_window_ = 0;
  std::map<std::size_t, std::size_t> synopses_;
  std::map<std::size_t, std::pair<std::size_t, std::size_t>> anomalies_;
};

// One stderr line per kind of damage a read pass tolerated, so a recovered
// trace never looks pristine.
void warn_trace_damage(const char* cmd, const core::TraceStats& stats) {
  if (stats.blocks_corrupt > 0) {
    std::fprintf(stderr,
                 "%s: warning: skipped %llu corrupt block(s) of %llu\n", cmd,
                 static_cast<unsigned long long>(stats.blocks_corrupt),
                 static_cast<unsigned long long>(stats.blocks_total));
  }
  if (stats.truncated_tail || stats.bytes_discarded > 0) {
    std::fprintf(stderr,
                 "%s: warning: discarded %llu unrecoverable byte(s)%s\n", cmd,
                 static_cast<unsigned long long>(stats.bytes_discarded),
                 stats.truncated_tail ? " (torn tail)" : "");
  }
}

int cmd_record(const Args& args) {
  if (args.trace.empty()) {
    std::fprintf(stderr, "record: --trace=<out> required\n");
    return 2;
  }
  sim::Engine engine;
  core::LogRegistry registry;
  core::NullSink sink;
  faults::FaultPlane plane;
  core::Monitor monitor(&registry, &engine.clock());

  std::unique_ptr<systems::MiniCassandra> cassandra;
  std::unique_ptr<systems::MiniHdfs> hdfs;
  std::unique_ptr<systems::MiniHBase> hbase;
  workload::KvService* service = nullptr;
  if (args.system == "cassandra") {
    cassandra = std::make_unique<systems::MiniCassandra>(
        &engine, &registry, &monitor, &sink, core::Level::kInfo, &plane,
        systems::CassandraOptions{}, args.seed);
    cassandra->preload(20000, 100);
    cassandra->start();
    service = cassandra.get();
  } else if (args.system == "hbase") {
    hdfs = std::make_unique<systems::MiniHdfs>(
        &engine, &registry, &monitor, &sink, core::Level::kInfo, &plane,
        systems::HdfsOptions{}, args.seed);
    hbase = std::make_unique<systems::MiniHBase>(
        &engine, &registry, &monitor, &sink, core::Level::kInfo, &plane,
        hdfs.get(), systems::HBaseOptions{}, args.seed ^ 0xABCD);
    hbase->preload(20000, 100);
    hdfs->start();
    hbase->start();
    service = hbase.get();
  } else {
    std::fprintf(stderr, "record: unknown --system=%s (cassandra|hbase)\n",
                 args.system.c_str());
    return 2;
  }

  if (!args.fault.empty()) {
    faults::FaultSpec fault;
    fault.host = 1;
    fault.intensity = 1.0;
    fault.from = minutes(2 + args.run_minutes / 3);
    fault.until = minutes(2 + args.run_minutes);
    if (args.fault == "error-wal") {
      fault.activity = faults::Activity::kWalAppend;
      fault.mode = faults::FaultMode::kError;
    } else if (args.fault == "delay-wal") {
      fault.activity = faults::Activity::kWalAppend;
      fault.mode = faults::FaultMode::kDelay;
      fault.delay = ms(100);
    } else if (args.fault == "error-flush") {
      fault.activity = faults::Activity::kMemtableFlush;
      fault.mode = faults::FaultMode::kError;
    } else if (args.fault == "delay-flush") {
      fault.activity = faults::Activity::kMemtableFlush;
      fault.mode = faults::FaultMode::kDelay;
      fault.delay = ms(100);
    } else {
      std::fprintf(stderr, "record: unknown --fault=%s\n", args.fault.c_str());
      return 2;
    }
    plane.add(fault);
    std::printf("injecting %s on host 1, minutes %lld-%lld\n",
                args.fault.c_str(),
                static_cast<long long>(to_min(fault.from)),
                static_cast<long long>(to_min(fault.until)));
  }

  workload::YcsbOptions wl;
  wl.clients = 8;
  wl.think_mean = ms(10);
  wl.read_proportion = 0.2;
  wl.key_space = 20000;
  workload::YcsbDriver ycsb(&engine, service, wl, args.seed ^ 0x55AA);
  ycsb.start(minutes(2 + args.run_minutes));

  // Stream the capture: synopses spill to disk in checksummed blocks as the
  // run progresses (O(block) memory), and a crash mid-run loses at most the
  // synopses since the last sealed block. The file appears at --trace only
  // on clean finalize; until then it streams to --trace.tmp.
  core::TraceWriter writer(args.trace);
  if (!writer.ok()) {
    std::fprintf(stderr, "record: cannot write %s\n", args.trace.c_str());
    return 1;
  }
  engine.run_until(minutes(2));        // warm to steady state
  monitor.start_recording(&writer);    // capture from here
  const UsTime end = minutes(2 + args.run_minutes);
  for (UsTime t = minutes(2); t < end;) {
    t = std::min(end, t + sec(10));
    engine.run_until(t);
    monitor.poll(engine.now());        // hand the batch to the writer
  }
  if (!monitor.stop_recording() || !writer.finalize()) {
    std::fprintf(stderr, "record: cannot write %s\n", args.trace.c_str());
    return 1;
  }
  std::printf("wrote %llu synopses in %llu blocks (%.2f MB) to %s\n",
              static_cast<unsigned long long>(writer.synopses_written()),
              static_cast<unsigned long long>(writer.blocks_written()),
              static_cast<double>(writer.bytes_written()) / 1e6,
              args.trace.c_str());
  if (!args.registry.empty()) {
    std::vector<std::uint8_t> bytes;
    registry.save(bytes);
    if (!write_file(args.registry, bytes)) {
      std::fprintf(stderr, "record: cannot write %s\n", args.registry.c_str());
      return 1;
    }
    std::printf("wrote template dictionary (%zu stages, %zu log points) to "
                "%s\n",
                registry.num_stages(), registry.num_log_points(),
                args.registry.c_str());
  }
  return 0;
}

int cmd_train(const Args& args) {
  // Stream the file through the recovering reader: a damaged trace trains
  // on everything recoverable, with the damage reported loudly.
  core::TraceReader reader(args.trace);
  if (!reader.ok()) {
    std::fprintf(stderr, "train: cannot read --trace=%s\n", args.trace.c_str());
    return 1;
  }
  std::vector<core::Synopsis> trace;
  core::Synopsis s;
  while (reader.next(s)) trace.push_back(std::move(s));
  warn_trace_damage("train", reader.stats());
  const auto model = core::OutlierModel::train(trace);
  std::vector<std::uint8_t> bytes;
  model.save(bytes);
  if (args.model.empty() || !write_file(args.model, bytes)) {
    std::fprintf(stderr, "train: cannot write --model=%s\n",
                 args.model.c_str());
    return 1;
  }
  std::printf("trained on %llu tasks across %zu stages -> %s (%zu bytes)\n",
              static_cast<unsigned long long>(model.trained_tasks()),
              model.num_stages(), args.model.c_str(), bytes.size());
  return 0;
}

int cmd_detect(const Args& args) {
  core::TraceReader reader(args.trace);
  if (!reader.ok()) {
    std::fprintf(stderr, "detect: cannot read --trace=%s\n",
                 args.trace.c_str());
    return 1;
  }
  const auto model_bytes = read_file(args.model);
  if (!model_bytes) {
    std::fprintf(stderr, "detect: cannot read --model=%s\n",
                 args.model.c_str());
    return 1;
  }
  const auto model = core::OutlierModel::load(*model_bytes);
  if (!model) {
    std::fprintf(stderr, "detect: %s is not a SAAD model\n",
                 args.model.c_str());
    return 1;
  }
  core::LogRegistry registry;
  if (!args.registry.empty()) {
    const auto reg_bytes = read_file(args.registry);
    if (!reg_bytes || !registry.load(*reg_bytes)) {
      std::fprintf(stderr, "detect: cannot load --registry=%s\n",
                   args.registry.c_str());
      return 1;
    }
  }

  core::DetectorConfig config;
  config.window = sec(args.window_sec);
  config.analyzer_threads =
      args.threads < 0 ? 1 : static_cast<std::size_t>(args.threads);
  core::AnalyzerPool analyzer(&*model, config);
  // True streaming: synopses flow from disk block-by-block into the
  // analyzer, so detection memory is O(block) + O(open windows), not
  // O(trace).
  LiveStats live(config.window);
  std::vector<core::Anomaly> anomalies;
  std::size_t ingested = 0;
  core::Synopsis s;
  while (reader.next(s)) {
    analyzer.ingest(s);
    ++ingested;
    if (args.stats) {
      live.note(s);
      const UsTime safe = live.safe_now();
      if (live.window_ready(safe)) {
        auto closed = analyzer.advance_to(safe);
        live.absorb(closed);
        anomalies.insert(anomalies.end(),
                         std::make_move_iterator(closed.begin()),
                         std::make_move_iterator(closed.end()));
        live.report_until(safe);
      }
    }
  }
  warn_trace_damage("detect", reader.stats());
  auto tail = analyzer.finish();
  if (args.stats) {
    live.absorb(tail);
    live.report_rest();
  }
  anomalies.insert(anomalies.end(), std::make_move_iterator(tail.begin()),
                   std::make_move_iterator(tail.end()));

  std::printf("%zu anomalies in %zu synopses:\n", anomalies.size(), ingested);
  for (const auto& a : anomalies)
    std::printf("  %s\n", core::describe(a, registry).c_str());

  if (!args.html.empty()) {
    core::HtmlReportOptions options;
    options.title = "SAAD report: " + args.trace;
    std::size_t max_window = 0;
    for (const auto& a : anomalies)
      max_window = std::max(max_window, a.window + 1);
    options.num_windows = std::max<std::size_t>(max_window, 10);
    const std::string html =
        core::render_html_report(anomalies, registry, options);
    std::ofstream file(args.html, std::ios::trunc);
    file << html;
    if (!file) {
      std::fprintf(stderr, "detect: cannot write --html=%s\n",
                   args.html.c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.html.c_str());
  }
  return anomalies.empty() ? 0 : 3;  // 3 = anomalies found (like grep's 0/1)
}

// SIGINT/SIGTERM ask a long-lived `serve` to finish windows and report.
volatile std::sig_atomic_t g_stop_requested = 0;
void on_stop_signal(int) { g_stop_requested = 1; }

// SIGHUP asks `serve` to re-read --model and hot-swap it at the next window
// boundary, without touching client connections.
volatile std::sig_atomic_t g_reload_requested = 0;
void on_reload_signal(int) { g_reload_requested = 1; }

// Runs the analyzer as a network service: SynopsisServer decodes SAADNET1
// frames into the sharded channel, and this (consumer) loop drains the
// channel into the AnalyzerPool — exactly the in-process pipeline, with a
// wire in the middle. Output format matches `detect`, so the loopback
// acceptance can diff the two verbatim.
int cmd_serve(const Args& args) {
  if (args.listen < 0 || args.listen > 65535) {
    std::fprintf(stderr, "serve: --listen=<port> required (0 = ephemeral)\n");
    return 2;
  }
  auto model_bytes = read_file(args.model);
  if (!model_bytes) {
    std::fprintf(stderr, "serve: cannot read --model=%s\n", args.model.c_str());
    return 1;
  }
  auto loaded = core::OutlierModel::load(*model_bytes);
  if (!loaded) {
    std::fprintf(stderr, "serve: %s is not a SAAD model\n", args.model.c_str());
    return 1;
  }
  // The active model lives on the heap so a SIGHUP hot swap can stage a new
  // one and retire this one only after the pool switched over.
  auto active_model =
      std::make_unique<core::OutlierModel>(std::move(*loaded));
  core::LogRegistry registry;
  std::vector<std::uint8_t> registry_bytes;
  if (!args.registry.empty()) {
    const auto reg_bytes = read_file(args.registry);
    if (!reg_bytes || !registry.load(*reg_bytes)) {
      std::fprintf(stderr, "serve: cannot load --registry=%s\n",
                   args.registry.c_str());
      return 1;
    }
    registry_bytes = *reg_bytes;
  }

  core::DetectorConfig config;
  config.window = sec(args.window_sec);
  config.analyzer_threads =
      args.threads < 0 ? 1 : static_cast<std::size_t>(args.threads);

  // Warm restart: before the listener opens, adopt the newest valid
  // checkpoint (torn or corrupt candidates are skipped loudly). The
  // checkpoint's model/registry are authoritative over the --model/--registry
  // files — they are what the open windows were classified under.
  const bool checkpointing = !args.checkpoint_dir.empty();
  core::CheckpointDir ckpt_dir(args.checkpoint_dir);
  std::uint64_t next_sequence = 1;
  std::optional<core::Checkpoint> resumed;
  if (checkpointing) {
    if (!ckpt_dir.ensure()) {
      std::fprintf(stderr, "serve: cannot use --checkpoint-dir=%s\n",
                   args.checkpoint_dir.c_str());
      return 1;
    }
    next_sequence = ckpt_dir.max_sequence() + 1;
    std::size_t corrupt = 0;
    resumed = ckpt_dir.load_latest(&corrupt);
    if (corrupt > 0) {
      std::fprintf(stderr,
                   "serve: skipped %zu torn or corrupt checkpoint(s) in %s\n",
                   corrupt, args.checkpoint_dir.c_str());
    }
    if (resumed) {
      if (resumed->window != config.window) {
        std::fprintf(stderr,
                     "serve: checkpoint window is %lld us but --window-sec=%lld"
                     " asks for %lld us; refusing to resume into a different "
                     "windowing\n",
                     static_cast<long long>(resumed->window), args.window_sec,
                     static_cast<long long>(config.window));
        return 2;
      }
      if (!resumed->model.empty()) {
        auto m = core::OutlierModel::load(resumed->model);
        if (!m) {
          std::fprintf(stderr, "serve: checkpoint model is malformed\n");
          return 1;
        }
        active_model = std::make_unique<core::OutlierModel>(std::move(*m));
        *model_bytes = resumed->model;
      }
      if (!resumed->registry.empty()) {
        if (!registry.load(resumed->registry)) {
          std::fprintf(stderr, "serve: checkpoint registry is malformed\n");
          return 1;
        }
        registry_bytes = resumed->registry;
      }
    }
  }

  core::AnalyzerPool analyzer(active_model.get(), config);
  std::vector<core::Anomaly> anomalies;
  std::size_t ingested = 0;
  if (resumed) {
    if (!resumed->analyzer.empty() &&
        !analyzer.restore_state(resumed->analyzer)) {
      std::fprintf(stderr, "serve: checkpoint analyzer state is malformed\n");
      return 1;
    }
    anomalies = std::move(resumed->anomalies);
    ingested = static_cast<std::size_t>(resumed->ingested);
    std::fprintf(stderr,
                 "serve: resumed from checkpoint %llu (%llu synopses, %zu "
                 "verdicts, model epoch %llu, watermark published=%llu "
                 "acked=%llu)\n",
                 static_cast<unsigned long long>(resumed->sequence),
                 static_cast<unsigned long long>(resumed->ingested),
                 anomalies.size(),
                 static_cast<unsigned long long>(resumed->model_epoch),
                 static_cast<unsigned long long>(resumed->published),
                 static_cast<unsigned long long>(resumed->acked));
  }

  core::SynopsisChannel channel;
  net::SynopsisServer::Options server_options;
  server_options.port = static_cast<std::uint16_t>(args.listen);
  net::SynopsisServer server(&channel, server_options);
  std::signal(SIGINT, on_stop_signal);
  std::signal(SIGTERM, on_stop_signal);
  std::signal(SIGHUP, on_reload_signal);
  if (!server.start()) {
    std::fprintf(stderr, "serve: cannot listen on port %lld\n", args.listen);
    return 1;
  }
  std::fprintf(stderr, "serve: listening on 127.0.0.1:%u (threads=%lld)\n",
               server.port(), args.threads);
  if (!args.port_file.empty()) {
    std::ofstream pf(args.port_file, std::ios::trunc);
    pf << server.port() << "\n";
    if (!pf) {
      std::fprintf(stderr, "serve: cannot write --port-file=%s\n",
                   args.port_file.c_str());
      server.stop();
      return 1;
    }
  }

  // Span tracing rides along whenever the admin plane or --trace-out asks
  // for it. seed=0 pins the sampled set to batches 0, N, 2N, ... so the
  // first decoded batch is always sampled and short acceptance runs see
  // completed spans.
  const bool tracing = args.admin_port >= 0 || !args.trace_out.empty();
  obs::SpanTracer& tracer = obs::SpanTracer::global();
  if (tracing) {
    obs::SpanTracer::Options trace_options;
    trace_options.sample_every = static_cast<std::uint64_t>(args.span_every);
    trace_options.seed = 0;
    tracer.enable(std::move(trace_options));
  }

  // Checkpointing and span tracing need the progressive close cursor even
  // without --stats; print=false keeps stdout byte-identical to a plain
  // serve.
  const bool progressive = args.stats || checkpointing || tracing;
  LiveStats live(config.window, args.stats);
  live.resume_from(analyzer.restored_next_window());
  std::vector<core::Synopsis> batch;
  std::uint64_t drained_total = 0;  // synopses drained: publish coordinates

  // Live state the admin plane's /statusz and /readyz render. The consumer
  // loop publishes here; the admin I/O thread only reads, so every field is
  // an atomic (no locks shared with the hot path).
  struct AdminState {
    std::atomic<std::uint64_t> ingested{0};
    std::atomic<std::int64_t> watermark_us{0};
    std::atomic<std::int64_t> last_closed_window{-1};
    std::atomic<std::uint64_t> close_barriers{0};
    std::atomic<std::uint64_t> checkpoint_sequence{0};
    std::atomic<std::int64_t> checkpoint_wall_us{0};
    std::atomic<std::uint64_t> model_epoch{0};
    std::atomic<std::uint64_t> verdicts{0};
  } admin_state;
  admin_state.ingested.store(ingested, std::memory_order_relaxed);
  admin_state.model_epoch.store(analyzer.model_epoch(),
                                std::memory_order_relaxed);
  admin_state.verdicts.store(anomalies.size(), std::memory_order_relaxed);
  if (resumed)
    admin_state.checkpoint_sequence.store(resumed->sequence,
                                          std::memory_order_relaxed);
  const auto started_steady = std::chrono::steady_clock::now();

  // Hot model reload: SIGHUP stages, the pool applies at the next window
  // boundary, and adopt_model() then retires the previous model. staged
  // must outlive the apply (the pool holds a raw pointer until then).
  std::unique_ptr<core::OutlierModel> staged_model;
  std::vector<std::uint8_t> staged_model_bytes;
  std::uint64_t adopted_epoch = analyzer.model_epoch();
  auto adopt_model = [&] {
    if (staged_model && analyzer.model_epoch() != adopted_epoch) {
      adopted_epoch = analyzer.model_epoch();
      active_model = std::move(staged_model);
      *model_bytes = std::move(staged_model_bytes);
    }
  };
  auto handle_reload = [&] {
    auto bytes = read_file(args.model);
    auto m = bytes ? core::OutlierModel::load(*bytes) : std::nullopt;
    if (!m) {
      std::fprintf(stderr,
                   "serve: reload: cannot load --model=%s; keeping the "
                   "current model\n",
                   args.model.c_str());
      return;
    }
    auto fresh = std::make_unique<core::OutlierModel>(std::move(*m));
    analyzer.swap_model(fresh.get());
    staged_model = std::move(fresh);  // frees any not-yet-applied staging
    staged_model_bytes = std::move(*bytes);
    std::fprintf(stderr,
                 "serve: reload: staged %s (%zu stages); swaps in at the "
                 "next window boundary\n",
                 args.model.c_str(), staged_model->num_stages());
  };

  std::uint64_t close_barriers = 0;
  const std::uint64_t checkpoint_every = static_cast<std::uint64_t>(
      args.checkpoint_every);
  std::uint64_t checkpointed_sessions = 0;
  std::uint64_t acked_total = 0;  // this loop is the only server.ack() caller

  auto write_checkpoint = [&](const char* why) {
    core::Checkpoint c;
    c.sequence = next_sequence;
    c.model_epoch = analyzer.model_epoch();
    c.window = config.window;
    c.threads = analyzer.threads();
    c.ingested = ingested;
    c.published = server.stats().published;
    c.acked = acked_total;
    c.model = *model_bytes;
    c.registry = registry_bytes;
    analyzer.save_state(c.analyzer);
    c.anomalies = anomalies;
    if (!ckpt_dir.write(c)) {
      std::fprintf(stderr, "serve: checkpoint %llu failed to write to %s\n",
                   static_cast<unsigned long long>(c.sequence),
                   args.checkpoint_dir.c_str());
      return;
    }
    ++next_sequence;
    // Published to /statusz only after the validated write landed, so the
    // admin plane can never report a checkpoint that restart would reject.
    admin_state.checkpoint_sequence.store(c.sequence,
                                          std::memory_order_relaxed);
    admin_state.checkpoint_wall_us.store(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count(),
        std::memory_order_relaxed);
    std::fprintf(stderr,
                 "serve: checkpoint %llu (%s: %zu synopses, %zu verdicts)\n",
                 static_cast<unsigned long long>(c.sequence), why, ingested,
                 anomalies.size());
  };

  auto ingest_batch = [&] {
    drained_total += batch.size();
    tracer.on_dequeued(drained_total);
    for (const auto& s : batch) {
      analyzer.ingest(s);
      ++ingested;
      if (progressive) live.note(s);
    }
    tracer.on_assigned(drained_total);
    server.ack(batch.size());
    acked_total += batch.size();
    admin_state.ingested.store(ingested, std::memory_order_relaxed);
    if (progressive) {
      const UsTime safe = live.safe_now();
      if (live.window_ready(safe)) {
        auto closed = analyzer.advance_to(safe);
        tracer.on_window_close(drained_total);
        adopt_model();
        live.absorb(closed);
        anomalies.insert(anomalies.end(),
                         std::make_move_iterator(closed.begin()),
                         std::make_move_iterator(closed.end()));
        tracer.on_verdict_emit(drained_total);
        live.report_until(safe);
        ++close_barriers;
        admin_state.watermark_us.store(safe, std::memory_order_relaxed);
        admin_state.last_closed_window.store(
            safe / config.window - 1, std::memory_order_relaxed);
        admin_state.close_barriers.store(close_barriers,
                                         std::memory_order_relaxed);
        admin_state.model_epoch.store(analyzer.model_epoch(),
                                      std::memory_order_relaxed);
        admin_state.verdicts.store(anomalies.size(),
                                   std::memory_order_relaxed);
        if (checkpointing && close_barriers % checkpoint_every == 0)
          write_checkpoint("window close");
      }
    }
    batch.clear();
  };

  // Admin plane: a separate HTTP listener on its own port and I/O thread,
  // so scrapes and probes can never head-of-line-block synopsis ingestion.
  // Handlers run on the admin thread and read only atomics (admin_state,
  // server.stats()), the lock-light metrics registry, and the tracer's own
  // mutex-guarded export. All admin chatter goes to stderr — stdout stays
  // byte-identical to `detect`.
  net::AdminServer::Options admin_options;
  admin_options.port = args.admin_port < 0
                           ? 0
                           : static_cast<std::uint16_t>(args.admin_port);
  net::AdminServer admin(admin_options);
  if (args.admin_port >= 0) {
    admin.route("/metrics", [](const net::HttpRequest&) {
      net::HttpResponse r;
      r.content_type = "text/plain; version=0.0.4; charset=utf-8";
      r.body = obs::render_prometheus(obs::MetricsRegistry::global());
      return r;
    });
    admin.route("/healthz", [](const net::HttpRequest&) {
      net::HttpResponse r;
      r.body = "ok\n";
      return r;
    });
    // Ready = a client has hello'd (the first valid frame on any connection
    // is always a hello) and the window watermark has started advancing.
    admin.route("/readyz", [&](const net::HttpRequest&) {
      net::HttpResponse r;
      const bool helloed = server.stats().frames > 0;
      const bool advancing =
          admin_state.watermark_us.load(std::memory_order_relaxed) > 0;
      if (helloed && advancing) {
        r.body = "ready\n";
      } else {
        r.status = 503;
        r.body = helloed ? "not ready: watermark not advancing\n"
                         : "not ready: no hello yet\n";
      }
      return r;
    });
    admin.route("/statusz", [&](const net::HttpRequest&) {
      const auto stats = server.stats();
      const double uptime_s =
          std::chrono::duration_cast<std::chrono::duration<double>>(
              std::chrono::steady_clock::now() - started_steady)
              .count();
      const std::int64_t ckpt_wall =
          admin_state.checkpoint_wall_us.load(std::memory_order_relaxed);
      const double ckpt_age_s =
          ckpt_wall == 0
              ? -1.0
              : static_cast<double>(
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count() -
                    ckpt_wall) /
                    1e6;
      char buf[1536];
      std::snprintf(
          buf, sizeof(buf),
          "{\"schema_version\":1,\"command\":\"serve\","
          "\"uptime_s\":%.3f,"
          "\"build\":{\"compiler\":\"%s\",\"metrics_enabled\":%s},"
          "\"connections\":{\"active\":%llu,\"total\":%llu,"
          "\"sessions\":%llu},"
          "\"pipeline\":{\"ingested\":%llu,\"published\":%llu,"
          "\"acked\":%llu,\"watermark_us\":%lld,"
          "\"last_closed_window\":%lld,\"close_barriers\":%llu,"
          "\"verdicts\":%llu},"
          "\"checkpoint\":{\"enabled\":%s,\"sequence\":%llu,"
          "\"age_s\":%.3f},"
          "\"model\":{\"epoch\":%llu},"
          "\"spans\":{\"enabled\":%s,\"sample_every\":%llu,"
          "\"sampled\":%llu,\"completed\":%llu,\"abandoned\":%llu}}\n",
          uptime_s, __VERSION__, obs::kMetricsEnabled ? "true" : "false",
          static_cast<unsigned long long>(server.active_connections()),
          static_cast<unsigned long long>(stats.connections),
          static_cast<unsigned long long>(stats.sessions),
          static_cast<unsigned long long>(
              admin_state.ingested.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(stats.published),
          static_cast<unsigned long long>(stats.published -
                                          server.outstanding()),
          static_cast<long long>(
              admin_state.watermark_us.load(std::memory_order_relaxed)),
          static_cast<long long>(
              admin_state.last_closed_window.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              admin_state.close_barriers.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              admin_state.verdicts.load(std::memory_order_relaxed)),
          checkpointing ? "true" : "false",
          static_cast<unsigned long long>(
              admin_state.checkpoint_sequence.load(std::memory_order_relaxed)),
          ckpt_age_s,
          static_cast<unsigned long long>(
              admin_state.model_epoch.load(std::memory_order_relaxed)),
          tracing ? "true" : "false",
          static_cast<unsigned long long>(tracer.sample_every()),
          static_cast<unsigned long long>(tracer.sampled()),
          static_cast<unsigned long long>(tracer.completed_count()),
          static_cast<unsigned long long>(tracer.abandoned()));
      net::HttpResponse r;
      r.content_type = "application/json";
      r.body = buf;
      return r;
    });
    admin.route("/flightrecorder", [](const net::HttpRequest&) {
      net::HttpResponse r;
      r.body_writer = [](int fd) {
        saad::obs::FlightRecorder::global().dump_to_fd(fd);
      };
      return r;
    });
    admin.route("/spans", [&](const net::HttpRequest&) {
      net::HttpResponse r;
      r.content_type = "application/json";
      r.body = tracer.chrome_trace_json();
      r.body += "\n";
      return r;
    });
    if (!admin.start()) {
      std::fprintf(stderr, "serve: cannot listen on --admin-port=%lld\n",
                   args.admin_port);
      server.stop();
      return 1;
    }
    std::fprintf(stderr, "serve: admin plane on 127.0.0.1:%u\n", admin.port());
    if (!args.admin_port_file.empty()) {
      std::ofstream pf(args.admin_port_file, std::ios::trunc);
      pf << admin.port() << "\n";
      if (!pf) {
        std::fprintf(stderr, "serve: cannot write --admin-port-file=%s\n",
                     args.admin_port_file.c_str());
        admin.stop();
        server.stop();
        return 1;
      }
    }
  }

  while (g_stop_requested == 0) {
    if (g_reload_requested != 0) {
      g_reload_requested = 0;
      handle_reload();
    }
    batch.clear();
    channel.drain(batch);
    if (batch.empty()) {
      // --once: the session is over once a hello'd connection has ended and
      // everything decoded has been published and drained.
      if (args.once && server.sessions_finished() > 0 &&
          server.active_connections() == 0 && server.drained())
        break;
      // Session end is the one quiescent point a test can line up on: every
      // synopsis the finished session carried has been decoded, published,
      // drained, and ingested, so this checkpoint sits at an exact stream
      // position (a SIGKILL now loses nothing).
      if (checkpointing &&
          server.sessions_finished() > checkpointed_sessions &&
          server.drained() && server.outstanding() == 0) {
        checkpointed_sessions = server.sessions_finished();
        write_checkpoint("session end");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    ingest_batch();
  }
  server.stop();          // publishes any still-pending batches
  channel.drain(batch);   // ...which this final drain collects
  ingest_batch();

  auto tail = analyzer.finish();
  // finish() closes every window still open, so spans waiting on the close
  // and emit hops complete here.
  tracer.on_window_close(drained_total);
  adopt_model();
  if (args.stats) {
    live.absorb(tail);
    live.report_rest();
  }
  anomalies.insert(anomalies.end(), std::make_move_iterator(tail.begin()),
                   std::make_move_iterator(tail.end()));
  tracer.on_verdict_emit(drained_total);
  admin_state.verdicts.store(anomalies.size(), std::memory_order_relaxed);
  admin_state.model_epoch.store(analyzer.model_epoch(),
                                std::memory_order_relaxed);

  // A signal-initiated shutdown writes a final checkpoint: every verdict
  // (including the finish() tail) is captured, so a restart resumes with
  // the complete report instead of losing everything since the last window
  // barrier.
  if (checkpointing && g_stop_requested != 0) write_checkpoint("shutdown");

  if (!args.trace_out.empty()) {
    if (tracer.write_chrome_trace(args.trace_out)) {
      std::fprintf(stderr,
                   "serve: wrote %zu span(s) as Chrome trace JSON to %s\n",
                   tracer.completed().size(), args.trace_out.c_str());
    } else {
      std::fprintf(stderr, "serve: cannot write --trace-out=%s\n",
                   args.trace_out.c_str());
    }
  }
  admin.stop();

  const auto stats = server.stats();
  std::fprintf(stderr,
               "serve: %llu connections, %llu sessions, %llu frames, %llu "
               "synopses, %llu bytes; rejects: %llu crc, %llu magic, %llu "
               "frame, %llu payload, %llu truncated; %llu shed\n",
               static_cast<unsigned long long>(stats.connections),
               static_cast<unsigned long long>(stats.sessions),
               static_cast<unsigned long long>(stats.frames),
               static_cast<unsigned long long>(stats.synopses),
               static_cast<unsigned long long>(stats.bytes),
               static_cast<unsigned long long>(stats.crc_rejects),
               static_cast<unsigned long long>(stats.magic_rejects),
               static_cast<unsigned long long>(stats.frame_rejects),
               static_cast<unsigned long long>(stats.payload_rejects),
               static_cast<unsigned long long>(stats.truncated),
               static_cast<unsigned long long>(stats.shed_synopses));

  std::printf("%zu anomalies in %zu synopses:\n", anomalies.size(), ingested);
  for (const auto& a : anomalies)
    std::printf("  %s\n", core::describe(a, registry).c_str());
  return anomalies.empty() ? 0 : 3;
}

// Streams a recorded trace into a running `serve` through the reconnecting
// client shim, at recorded (--pace=recorded, optionally --speed=N times
// faster) or maximum (--pace=fast) pacing.
int cmd_replay(const Args& args) {
  const auto colon = args.connect.rfind(':');
  if (args.connect.empty() || colon == std::string::npos) {
    std::fprintf(stderr, "replay: --connect=HOST:PORT required\n");
    return 2;
  }
  const long long port = parse_int(args.connect.substr(colon + 1), "connect");
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "replay: bad port in --connect=%s\n",
                 args.connect.c_str());
    return 2;
  }
  core::TraceReader reader(args.trace);
  if (!reader.ok()) {
    std::fprintf(stderr, "replay: cannot read --trace=%s\n",
                 args.trace.c_str());
    return 1;
  }
  if (args.pace != "fast" && args.pace != "recorded") {
    std::fprintf(stderr, "replay: unknown --pace=%s (fast|recorded)\n",
                 args.pace.c_str());
    return 2;
  }

  net::SynopsisClient::Options options;
  options.host = args.connect.substr(0, colon);
  options.port = static_cast<std::uint16_t>(port);
  options.batch_synopses =
      static_cast<std::size_t>(args.batch);
  options.spill_trace_path = args.spool_trace;
  options.seed = args.seed;
  net::SynopsisClient client(options);

  const auto max_attempts = static_cast<std::size_t>(
      args.retries);
  bool connected = false;
  for (std::size_t i = 0; i < max_attempts && !(connected = client.connect());
       ++i) {
  }
  if (!connected) {
    std::fprintf(stderr, "replay: cannot connect to %s after %zu attempts\n",
                 args.connect.c_str(), max_attempts);
    return 1;
  }

  const long long speed = args.speed;
  core::Synopsis s;
  UsTime prev = -1;
  long long to_skip = args.skip;
  std::size_t streamed = 0;
  while (reader.next(s)) {
    // --skip/--limit carve a synopsis range out of the trace, for staged
    // runs (a crash-restart test streams [0, N) then resumes at N). Pacing
    // gaps are measured inside the range only.
    if (to_skip > 0) {
      --to_skip;
      continue;
    }
    if (args.limit >= 0 && streamed >= static_cast<std::size_t>(args.limit))
      break;
    if (args.pace == "recorded" && prev >= 0 && s.start > prev) {
      std::this_thread::sleep_for(
          std::chrono::microseconds((s.start - prev) / speed));
    }
    prev = s.start;
    client.enqueue(s);
    ++streamed;
    if (client.spool_size() >= options.batch_synopses)
      client.flush();  // failure keeps everything spooled; retried below
  }
  warn_trace_damage("replay", reader.stats());

  bool delivered = false;
  for (std::size_t i = 0; i < max_attempts && !(delivered = client.close());
       ++i) {
  }
  const auto& stats = client.stats();
  std::printf("replay: streamed %llu of %zu synopses in %llu frames "
              "(%llu reconnects, %llu spilled, %llu dropped)\n",
              static_cast<unsigned long long>(stats.sent_synopses), streamed,
              static_cast<unsigned long long>(stats.sent_frames),
              static_cast<unsigned long long>(stats.reconnects),
              static_cast<unsigned long long>(stats.spilled),
              static_cast<unsigned long long>(stats.dropped));
  if (!delivered) {
    std::fprintf(stderr,
                 "replay: %zu synopses undelivered after %zu attempts%s\n",
                 client.spool_size(), max_attempts,
                 args.spool_trace.empty() ? ""
                                          : " (spilling to --spool-trace)");
    return 1;
  }
  return 0;
}

int cmd_info(const Args& args) {
  core::TraceReader reader(args.trace);
  if (!reader.ok()) {
    std::fprintf(stderr, "info: cannot read --trace=%s\n", args.trace.c_str());
    return 1;
  }
  UsTime first = 0, last = 0;
  std::uint64_t bytes = 0;
  std::map<core::StageId, std::uint64_t> per_stage;
  core::Synopsis s;
  std::size_t count = 0;
  while (reader.next(s)) {
    if (s.start < first || first == 0) first = s.start;
    last = std::max(last, s.start + s.duration);
    bytes += core::encoded_size(s);
    per_stage[s.stage]++;
    ++count;
  }
  const auto& stats = reader.stats();
  std::printf("format v%d: %zu synopses, %.2f MB encoded, spanning %.1f "
              "minutes, %zu stages\n",
              stats.version, count, static_cast<double>(bytes) / 1e6,
              to_min(last - first), per_stage.size());
  if (stats.version == 2) {
    std::printf("integrity: %llu blocks, %llu corrupt, %llu bytes "
                "discarded%s\n",
                static_cast<unsigned long long>(stats.blocks_total),
                static_cast<unsigned long long>(stats.blocks_corrupt),
                static_cast<unsigned long long>(stats.bytes_discarded),
                stats.truncated_tail ? ", torn tail" : "");
  } else if (stats.bytes_discarded > 0) {
    std::printf("integrity: %llu trailing bytes discarded (torn v1 tail)\n",
                static_cast<unsigned long long>(stats.bytes_discarded));
  }
  TextTable table({"reader metric", "value"});
  table.add_row({"records decoded",
                 TextTable::num(static_cast<std::int64_t>(count))});
  table.add_row({"blocks read",
                 TextTable::num(static_cast<std::int64_t>(stats.blocks_total))});
  table.add_row({"blocks corrupt (CRC)",
                 TextTable::num(static_cast<std::int64_t>(stats.blocks_corrupt))});
  table.add_row({"bytes discarded",
                 TextTable::num(static_cast<std::int64_t>(stats.bytes_discarded))});
  table.add_row({"torn tail recovered", stats.truncated_tail ? "yes" : "no"});
  std::printf("%s", table.to_string().c_str());
  return stats.blocks_corrupt > 0 || stats.bytes_discarded > 0 ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  saad::obs::install_crash_handler();
  // Register every pipeline family up front so --metrics-out snapshots are
  // complete (zero-valued families included) regardless of the command.
  saad::core::register_pipeline_metrics();
  saad::net::register_net_metrics();
  saad::obs::register_span_metrics();
  int rc;
  if (args.command == "record") {
    rc = cmd_record(args);
  } else if (args.command == "train") {
    rc = cmd_train(args);
  } else if (args.command == "detect") {
    rc = cmd_detect(args);
  } else if (args.command == "serve") {
    rc = cmd_serve(args);
  } else if (args.command == "replay") {
    rc = cmd_replay(args);
  } else if (args.command == "info") {
    rc = cmd_info(args);
  } else {
    std::fprintf(
        stderr,
        "usage: saad_offline <record|train|detect|serve|replay|info> "
        "[--trace=] [--model=] [--registry=] [--html=] "
        "[--system=cassandra|hbase] "
        "[--fault=error-wal|delay-wal|error-flush|delay-flush] "
        "[--minutes=N] [--window-sec=N] [--threads=N] [--seed=N] "
        "[--metrics-out=<file>] [--stats] "
        "[--listen=PORT] [--port-file=<file>] [--once] "
        "[--checkpoint-dir=<dir>] [--checkpoint-every=N] "
        "[--admin-port=PORT] [--admin-port-file=<file>] "
        "[--trace-out=<file>] [--span-every=N] "
        "[--connect=HOST:PORT] [--pace=fast|recorded] [--speed=N] "
        "[--batch=N] [--retries=N] [--spool-trace=<file>] "
        "[--skip=N] [--limit=N]\n");
    return 2;
  }
  // Telemetry snapshot last, after the command ran to completion (success or
  // failure — a failed run's metrics are the interesting ones).
  if (!args.metrics_out.empty()) {
    if (saad::obs::write_prometheus_file(saad::obs::MetricsRegistry::global(),
                                         args.metrics_out)) {
      std::fprintf(stderr, "wrote metrics snapshot to %s\n",
                   args.metrics_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write --metrics-out=%s\n",
                   args.metrics_out.c_str());
      if (rc == 0) rc = 1;
    }
  }
  return rc;
}
