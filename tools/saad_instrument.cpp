// saad_instrument — the paper's §4.1.1 instrumentation pass as a CLI:
// scans server sources for log statements and stage beginnings, builds the
// log template dictionary, generates the registration code, and lists the
// queue-dequeue sites that need manual inspection (non-Executor
// producer-consumer stages).
//
//   saad_instrument [--generate=out.inc] file1.java file2.cc ...
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/source_scan.h"

int main(int argc, char** argv) {
  using namespace saad::core;

  std::string generate_path;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--generate=", 0) == 0) {
      generate_path = arg.substr(11);
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "saad_instrument: unknown option %s\n", arg.c_str());
      std::fprintf(stderr,
                   "usage: saad_instrument [--generate=out.inc] <sources...>\n");
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: saad_instrument [--generate=out.inc] <sources...>\n");
    return 2;
  }

  ScanResult all;
  for (const auto& path : files) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << file.rdbuf();
    merge(all, scan_source(text.str(), path));
  }

  std::printf("stages (%zu):\n", all.stages.size());
  for (const auto& stage : all.stages) {
    std::printf("  %-30s %s:%d%s\n", stage.name.c_str(), stage.file.c_str(),
                stage.line, stage.explicit_marker ? "  (explicit)" : "");
  }
  std::printf("\nlog points (%zu):\n", all.log_points.size());
  for (const auto& point : all.log_points) {
    std::printf("  [%-5s] %-50s %s:%d\n", point.level.c_str(),
                point.template_text.c_str(), point.file.c_str(), point.line);
  }
  std::printf("\ndequeue sites for manual inspection (%zu):\n",
              all.dequeue_sites.size());
  for (const auto& site : all.dequeue_sites) {
    std::printf("  %s:%d: %s\n", site.file.c_str(), site.line,
                site.text.c_str());
  }

  if (!generate_path.empty()) {
    std::ofstream out(generate_path, std::ios::trunc);
    out << generate_registration(all);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", generate_path.c_str());
      return 1;
    }
    std::printf("\nwrote registration code to %s\n", generate_path.c_str());
  }
  return 0;
}
